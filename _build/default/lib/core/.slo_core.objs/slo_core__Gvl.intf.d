lib/core/gvl.mli: Flg Pipeline Slo_concurrency Slo_ir Slo_layout Slo_profile
