lib/core/hotness_heuristic.mli: Flg Slo_layout
