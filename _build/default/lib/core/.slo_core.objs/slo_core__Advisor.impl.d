lib/core/advisor.ml: Flg Format List Slo_graph Slo_layout
