lib/core/pipeline.mli: Flg Report Slo_concurrency Slo_ir Slo_layout Slo_profile
