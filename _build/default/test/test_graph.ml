(* Tests for Slo_graph.Sgraph (the Wgraph functor over strings). *)

module G = Slo_graph.Sgraph

let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let abc = List.fold_left G.add_node G.empty [ "a"; "b"; "c" ]

let test_empty () =
  check_int "no nodes" 0 (G.num_nodes G.empty);
  check_int "no edges" 0 (G.num_edges G.empty);
  Alcotest.(check bool) "mem" false (G.mem_node G.empty "x")

let test_add_edge_symmetric () =
  let g = G.add_edge G.empty "a" "b" 3.0 in
  checkf "a->b" 3.0 (G.weight0 g "a" "b");
  checkf "b->a" 3.0 (G.weight0 g "b" "a");
  Alcotest.(check (option (float 1e-9))) "weight some" (Some 3.0) (G.weight g "a" "b");
  Alcotest.(check (option (float 1e-9))) "absent edge" None (G.weight g "a" "c")

let test_accumulate () =
  let g = G.add_edge (G.add_edge G.empty "a" "b" 2.0) "b" "a" 3.0 in
  checkf "accumulated" 5.0 (G.weight0 g "a" "b");
  check_int "one edge" 1 (G.num_edges g)

let test_set_edge () =
  let g = G.set_edge (G.add_edge G.empty "a" "b" 2.0) "a" "b" 7.0 in
  checkf "replaced" 7.0 (G.weight0 g "a" "b")

let test_self_edge_rejected () =
  Alcotest.check_raises "self edge" (Invalid_argument "Wgraph.add_edge: self edge")
    (fun () -> ignore (G.add_edge G.empty "a" "a" 1.0))

let test_remove () =
  let g = G.add_edge (G.add_edge abc "a" "b" 1.0) "b" "c" 2.0 in
  let g' = G.remove_edge g "a" "b" in
  checkf "removed" 0.0 (G.weight0 g' "a" "b");
  checkf "other kept" 2.0 (G.weight0 g' "b" "c");
  let g'' = G.remove_node g "b" in
  Alcotest.(check bool) "node gone" false (G.mem_node g'' "b");
  check_int "edges gone with node" 0 (G.num_edges g'')

let test_neighbors_degree () =
  let g = G.add_edge (G.add_edge abc "a" "b" 1.0) "a" "c" 2.0 in
  check_int "degree a" 2 (G.degree g "a");
  check_int "degree b" 1 (G.degree g "b");
  Alcotest.(check (list (pair string (float 1e-9))))
    "neighbors sorted" [ ("b", 1.0); ("c", 2.0) ] (G.neighbors g "a");
  Alcotest.(check (list string)) "nodes" [ "a"; "b"; "c" ] (G.nodes g)

let test_edges_once () =
  let g = G.add_edge (G.add_edge abc "a" "b" 1.0) "b" "c" 2.0 in
  Alcotest.(check (list (triple string string (float 1e-9))))
    "each edge once, ordered" [ ("a", "b", 1.0); ("b", "c", 2.0) ] (G.edges g)

let test_filter_and_isolated () =
  let g =
    G.add_edge (G.add_edge (G.add_edge abc "a" "b" 5.0) "b" "c" (-2.0)) "a" "c" 1.0
  in
  let neg = G.filter_edges g ~f:(fun _ _ w -> w < 0.0) in
  check_int "kept one edge" 1 (G.num_edges neg);
  check_int "nodes retained" 3 (G.num_nodes neg);
  let pruned = G.drop_isolated neg in
  Alcotest.(check (list string)) "isolated dropped" [ "b"; "c" ] (G.nodes pruned)

let test_top_edges () =
  let g =
    G.add_edge (G.add_edge (G.add_edge abc "a" "b" 5.0) "b" "c" (-7.0)) "a" "c" 1.0
  in
  let top = G.top_edges g ~k:2 ~by:Float.abs in
  Alcotest.(check (list (triple string string (float 1e-9))))
    "by magnitude" [ ("b", "c", -7.0); ("a", "b", 5.0) ] top

let test_weight_sum_to () =
  let g = G.add_edge (G.add_edge abc "a" "b" 5.0) "a" "c" (-2.0) in
  checkf "sum" 3.0 (G.weight_sum_to g "a" [ "b"; "c" ]);
  checkf "missing nodes count 0" 5.0 (G.weight_sum_to g "a" [ "b"; "zz" ])

let test_union_map () =
  let g1 = G.add_edge G.empty "a" "b" 1.0 in
  let g2 = G.add_edge G.empty "a" "b" 2.0 in
  checkf "union accumulates" 3.0 (G.weight0 (G.union g1 g2) "a" "b");
  let neg = G.map_weights g1 ~f:(fun _ _ w -> -.w) in
  checkf "map" (-1.0) (G.weight0 neg "a" "b")

let test_dot () =
  let g = G.add_edge G.empty "a" "b" 1.5 in
  let dot = G.to_dot ~name:"t" g in
  Alcotest.(check bool) "contains edge" true
    (Tutil.contains dot "\"a\" -- \"b\"")

(* ------------------------------------------------------------------ *)
(* Properties over random edge lists *)

let graph_of_edges edges =
  List.fold_left (fun g (u, v, w) -> G.add_edge g u v w) G.empty edges

let names = List.init 10 (fun i -> Printf.sprintf "n%d" i)

let gen_edges =
  QCheck2.Gen.(
    let* n = int_range 0 40 in
    list_size (return n)
      (let* i = int_range 0 9 in
       let* j = int_range 0 9 in
       let* w = float_range (-50.0) 50.0 in
       return (List.nth names i, List.nth names j, w)))
  |> QCheck2.Gen.map (List.filter (fun (u, v, _) -> u <> v))

let prop_symmetric =
  QCheck2.Test.make ~name:"weights are symmetric" ~count:200 gen_edges
    (fun edges ->
      let g = graph_of_edges edges in
      List.for_all (fun (u, v, _) -> G.weight0 g u v = G.weight0 g v u) edges)

let prop_edge_count =
  QCheck2.Test.make ~name:"edges list length = num_edges" ~count:200 gen_edges
    (fun edges ->
      let g = graph_of_edges edges in
      List.length (G.edges g) = G.num_edges g)

let prop_accumulation =
  QCheck2.Test.make ~name:"weight is the sum of contributions" ~count:200
    gen_edges (fun edges ->
      let g = graph_of_edges edges in
      let expect u v =
        List.fold_left
          (fun acc (a, b, w) ->
            if (a = u && b = v) || (a = v && b = u) then acc +. w else acc)
          0.0 edges
      in
      List.for_all
        (fun (u, v, _) -> Float.abs (G.weight0 g u v -. expect u v) < 1e-6)
        edges)

let prop_filter_subset =
  QCheck2.Test.make ~name:"filter_edges yields a sub-edge-set" ~count:200
    gen_edges (fun edges ->
      let g = graph_of_edges edges in
      let f = G.filter_edges g ~f:(fun _ _ w -> w > 0.0) in
      List.for_all
        (fun (u, v, w) -> w > 0.0 && G.weight0 g u v = w)
        (G.edges f))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_symmetric; prop_edge_count; prop_accumulation; prop_filter_subset ]

let suites =
  [
    ( "graph.basics",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "symmetric add" `Quick test_add_edge_symmetric;
        Alcotest.test_case "accumulate" `Quick test_accumulate;
        Alcotest.test_case "set_edge" `Quick test_set_edge;
        Alcotest.test_case "self edge rejected" `Quick test_self_edge_rejected;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "neighbors/degree" `Quick test_neighbors_degree;
        Alcotest.test_case "edges visited once" `Quick test_edges_once;
        Alcotest.test_case "filter + drop_isolated" `Quick test_filter_and_isolated;
        Alcotest.test_case "top_edges" `Quick test_top_edges;
        Alcotest.test_case "weight_sum_to" `Quick test_weight_sum_to;
        Alcotest.test_case "union/map" `Quick test_union_map;
        Alcotest.test_case "dot export" `Quick test_dot;
      ] );
    ("graph.properties", props);
  ]
