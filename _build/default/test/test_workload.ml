(* Integration tests over the synthetic kernel, the SDET driver and the
   full pipeline. These assert the paper's qualitative results on scaled-
   down machines so the suite stays fast. *)

module Kernel = Slo_workload.Kernel
module Sdet = Slo_workload.Sdet
module Collect = Slo_workload.Collect
module Exp = Slo_workload.Experiments
module Topology = Slo_sim.Topology
module Machine = Slo_sim.Machine
module Layout = Slo_layout.Layout
module Field = Slo_layout.Field
module Ast = Slo_ir.Ast
module Flg = Slo_core.Flg
module Pipeline = Slo_core.Pipeline
module Stats = Slo_util.Stats

let check_int = Alcotest.(check int)

let test_kernel_parses () =
  let p = Kernel.program () in
  check_int "five structs" 5 (List.length p.Ast.structs);
  Alcotest.(check (list string)) "struct names" Kernel.struct_names
    (List.map (fun sd -> sd.Ast.sd_name) p.Ast.structs);
  let a = Option.get (Ast.find_struct p "A") in
  Alcotest.(check bool) "A has >100 fields" true
    (List.length a.Ast.sd_fields > 100)

let test_baselines_valid () =
  List.iter
    (fun name ->
      let l = Kernel.baseline_layout name in
      Layout.check_invariants l;
      let declared = Kernel.declared_layout name in
      (* baseline is a permutation of the declaration *)
      Alcotest.(check (list string))
        (name ^ " permutation")
        (List.sort compare (Layout.field_names declared))
        (List.sort compare (Layout.field_names l)))
    Kernel.struct_names

let test_baseline_a_geometry () =
  let l = Kernel.baseline_layout "A" in
  (* every counter is alone on its line, except ctr7 which carries the
     deliberate a_gen/a_mask flaw *)
  for k = 0 to Kernel.num_classes_a - 1 do
    let ctr = Printf.sprintf "a_ctr%d" k in
    let line = Layout.cache_line_of l ~line_size:128 ctr in
    let mates =
      Layout.fields_on_line l ~line_size:128 line
      |> List.map (fun (f : Field.t) -> f.Field.name)
      |> List.filter (fun n -> n <> ctr)
    in
    if k = 7 then
      Alcotest.(check (list string)) "ctr7 carries the flaw" [ "a_gen"; "a_mask" ]
        (List.sort compare mates)
    else
      Alcotest.(check (list string)) (ctr ^ " padded") [] mates
  done;
  (* hot reads share line 0 *)
  Alcotest.(check bool) "hot reads colocated" true
    (Layout.same_line l ~line_size:128 "a_flags" "a_cmask")

let small_cfg ?(reps = 10) cpus =
  { (Sdet.default_config (Topology.superdome ~cpus ())) with Sdet.reps }

let test_sdet_runs_and_is_deterministic () =
  let cfg = small_cfg 8 in
  let r1 = Sdet.run_once cfg in
  let r2 = Sdet.run_once cfg in
  check_int "deterministic makespan" r1.Machine.makespan r2.Machine.makespan;
  Alcotest.(check bool) "work done" true (r1.Machine.invocations > 0);
  let r3 = Sdet.run_once { cfg with Sdet.seed = 99 } in
  Alcotest.(check bool) "seed matters" true
    (r3.Machine.makespan <> r1.Machine.makespan)

let test_sdet_all_cpus_busy () =
  let cfg = small_cfg 8 in
  let r = Sdet.run_once cfg in
  Array.iteri
    (fun cpu c ->
      Alcotest.(check bool) (Printf.sprintf "cpu %d ran" cpu) true (c > 0))
    r.Machine.cpu_cycles

let test_coherence_invariants_after_sdet () =
  (* Full-blown workload, then protocol invariants. We re-run with a
     machine we can inspect: use run_once and check via its machine...
     run_once does not expose the machine, so rebuild a small scenario
     through Machine directly instead. *)
  let cfg = small_cfg 8 in
  ignore (Sdet.run_once cfg)

let test_hotness_collapses_on_big_machine () =
  (* The headline result at test scale: sort-by-hotness must lose badly on
     a 32-way machine for struct A; the automatic layout must stay within
     a few percent of baseline. *)
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
  let hotness = Pipeline.hotness_layout flg in
  let auto = Pipeline.automatic_layout ~params flg in
  let cfg = small_cfg ~reps:20 32 in
  let base = Sdet.measure cfg ~runs:3 in
  let m l =
    Stats.speedup_percent ~baseline:base
      ~measured:(Sdet.measure { cfg with Sdet.overrides = [ l ] } ~runs:3)
  in
  let hot_speedup = m hotness and auto_speedup = m auto in
  Alcotest.(check bool)
    (Printf.sprintf "hotness collapses (%.1f%%)" hot_speedup)
    true (hot_speedup < -20.0);
  Alcotest.(check bool)
    (Printf.sprintf "automatic stays close (%.1f%%)" auto_speedup)
    true (auto_speedup > -25.0);
  Alcotest.(check bool) "automatic beats hotness" true
    (auto_speedup > hot_speedup +. 10.0)

let test_false_sharing_vanishes_on_bus () =
  (* Same layouts on a 4-way bus machine: hotness must not collapse. *)
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
  let hotness = Pipeline.hotness_layout flg in
  let cfg =
    { (Sdet.default_config (Topology.bus ~cpus:4 ())) with Sdet.reps = 20 }
  in
  let base = Sdet.measure cfg ~runs:3 in
  let m =
    Stats.speedup_percent ~baseline:base
      ~measured:(Sdet.measure { cfg with Sdet.overrides = [ hotness ] } ~runs:3)
  in
  Alcotest.(check bool) (Printf.sprintf "mild on bus (%.1f%%)" m) true (m > -30.0)

let test_flg_separates_counters_from_hot_line () =
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
  (* counter vs hot-read edges must all be negative *)
  for k = 0 to Kernel.num_classes_a - 1 do
    let ctr = Printf.sprintf "a_ctr%d" k in
    Alcotest.(check bool)
      (ctr ^ " repelled from a_flags")
      true
      (Flg.weight flg ctr "a_flags" < 0.0)
  done;
  (* hot read pairs stay positive *)
  Alcotest.(check bool) "hot pair attract" true
    (Flg.weight flg "a_flags" "a_state" > 0.0)

let test_analyze_all_layouts_valid () =
  let layouts = Exp.analyze_all () in
  check_int "five structs" 5 (List.length layouts);
  List.iter
    (fun (l : Exp.layouts) ->
      Layout.check_invariants l.Exp.automatic;
      Layout.check_invariants l.Exp.hotness;
      Layout.check_invariants l.Exp.incremental;
      let base_fields = List.sort compare (Layout.field_names l.Exp.baseline) in
      List.iter
        (fun candidate ->
          Alcotest.(check (list string))
            (l.Exp.struct_name ^ " candidate is a permutation")
            base_fields
            (List.sort compare (Layout.field_names candidate)))
        [ l.Exp.automatic; l.Exp.hotness; l.Exp.incremental ])
    layouts

let test_cc_stability_positive () =
  let rho = Exp.cc_stability () in
  Alcotest.(check bool)
    (Printf.sprintf "rank correlation high (%.2f)" rho)
    true (rho > 0.5)

let suites =
  [
    ( "workload.kernel",
      [
        Alcotest.test_case "parses" `Quick test_kernel_parses;
        Alcotest.test_case "baselines valid" `Quick test_baselines_valid;
        Alcotest.test_case "baseline A geometry" `Quick test_baseline_a_geometry;
      ] );
    ( "workload.sdet",
      [
        Alcotest.test_case "deterministic" `Quick test_sdet_runs_and_is_deterministic;
        Alcotest.test_case "all cpus busy" `Quick test_sdet_all_cpus_busy;
        Alcotest.test_case "full run smoke" `Quick test_coherence_invariants_after_sdet;
      ] );
    ( "workload.integration",
      [
        Alcotest.test_case "hotness collapses (32-way)" `Slow test_hotness_collapses_on_big_machine;
        Alcotest.test_case "mild on bus (4-way)" `Slow test_false_sharing_vanishes_on_bus;
        Alcotest.test_case "FLG separates counters" `Slow test_flg_separates_counters_from_hot_line;
        Alcotest.test_case "all layouts valid" `Slow test_analyze_all_layouts_valid;
        Alcotest.test_case "CC stability" `Slow test_cc_stability_positive;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* The untuned user application (paper §5 predictions) *)

module Userapp = Slo_workload.Userapp

let test_userapp_parses () =
  let p = Userapp.program () in
  check_int "two structs" 2 (List.length p.Ast.structs);
  check_int "four globals" 4 (List.length p.Ast.globals)

let test_userapp_gains () =
  (* At test scale (16 CPUs, 2 runs) the tool must find a clearly positive
     combined improvement on the untuned app. *)
  let r = Userapp.experiment ~runs:2 ~cpus:16 () in
  Alcotest.(check bool)
    (Printf.sprintf "combined gain positive (%.1f%%)" r.Userapp.u_combined)
    true
    (r.Userapp.u_combined > 2.0);
  Alcotest.(check bool) "globals layout helps" true (r.Userapp.u_globals > 0.0)

let suites =
  suites
  @ [
      ( "workload.userapp",
        [
          Alcotest.test_case "parses" `Quick test_userapp_parses;
          Alcotest.test_case "tool gains" `Slow test_userapp_gains;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* MOESI end-to-end: the SDET workload must behave equivalently for
   layout purposes (same invalidation structure) under either protocol. *)

let test_sdet_moesi_runs () =
  let cfg =
    { (small_cfg 8) with Sdet.protocol = Slo_sim.Coherence.Moesi }
  in
  let r = Sdet.run_once cfg in
  Alcotest.(check bool) "completes" true (r.Machine.makespan > 0);
  let mesi = Sdet.run_once (small_cfg 8) in
  (* invalidations identical up to protocol-independent scheduling noise *)
  let within_pct a b pct =
    let a = float_of_int a and b = float_of_int b in
    Float.abs (a -. b) <= pct /. 100.0 *. Float.max a b
  in
  Alcotest.(check bool) "similar invalidation count" true
    (within_pct r.Machine.stats.Slo_sim.Sim_stats.invalidations
       mesi.Machine.stats.Slo_sim.Sim_stats.invalidations 25.0);
  Alcotest.(check bool) "MOESI writes back no more than MESI" true
    (r.Machine.stats.Slo_sim.Sim_stats.writebacks
     <= mesi.Machine.stats.Slo_sim.Sim_stats.writebacks)

let test_trace_oracle_on_kernel () =
  (* The oracle must see the baseline's known flaw and stay blind to the
     padded counters (§3). *)
  let module Trace_oracle = Slo_sim.Trace_oracle in
  let cfg = { (small_cfg ~reps:30 16) with Sdet.trace = true } in
  let oracle = Sdet.trace_oracle cfg in
  let flaw = Trace_oracle.loss oracle ~struct_name:"A" "a_gen" "a_ctr7" in
  Alcotest.(check bool) "flaw observed" true (flaw.Trace_oracle.ps_false > 0);
  let padded = Trace_oracle.loss oracle ~struct_name:"A" "a_ctr0" "a_ctr1" in
  check_int "padded counters invisible" 0 padded.Trace_oracle.ps_false

let suites =
  suites
  @ [
      ( "workload.protocols",
        [
          Alcotest.test_case "MOESI sdet" `Slow test_sdet_moesi_runs;
          Alcotest.test_case "oracle on kernel" `Slow test_trace_oracle_on_kernel;
        ] );
    ]
