(* Tests for Slo_ir: lexer, parser, typechecker, CFG lowering, eval. *)

module Lexer = Slo_ir.Lexer
module Parser = Slo_ir.Parser
module Ast = Slo_ir.Ast
module Typecheck = Slo_ir.Typecheck
module Cfg = Slo_ir.Cfg
module Pretty = Slo_ir.Pretty
module Eval = Slo_ir.Eval
module Loc = Slo_ir.Loc

let check_int = Alcotest.(check int)

let parse src = Parser.parse_program ~file:"t.mc" src
let parse_tc src = Typecheck.check (parse src)

let small_struct = "struct S { long a; long b; int c; char buf[16]; };\n"

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize ~file:"t" "for (i = 0; i < 10; i++) { }" in
  check_int "token count (incl EOF)" 16 (List.length toks);
  match toks with
  | (Lexer.KW_FOR, loc) :: (Lexer.LPAREN, _) :: (Lexer.IDENT "i", _) :: _ ->
    check_int "line" 1 (Loc.line loc)
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_comments () =
  let toks =
    Lexer.tokenize ~file:"t" "// line comment\nx /* block\n comment */ = 1;"
  in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "comments skipped" true
    (kinds = [ Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.INT 1; Lexer.SEMI; Lexer.EOF ])

let test_lexer_line_tracking () =
  let toks = Lexer.tokenize ~file:"t" "a\nb\n  c" in
  let lines = List.map (fun (_, l) -> Loc.line l) toks in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] lines

let test_lexer_two_char_ops () =
  let toks = Lexer.tokenize ~file:"t" "<= >= == != && || ++ -> < >" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "operators" true
    (kinds
    = [ Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR;
        Lexer.PLUSPLUS; Lexer.ARROW; Lexer.LT; Lexer.GT; Lexer.EOF ])

let test_lexer_errors () =
  let expect_error src =
    match Lexer.tokenize ~file:"t" src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("lexed invalid input: " ^ src)
  in
  expect_error "@";
  expect_error "a & b";
  expect_error "/* unterminated"

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_struct () =
  let p = parse small_struct in
  check_int "one struct" 1 (List.length p.Ast.structs);
  let sd = List.hd p.Ast.structs in
  check_int "four fields" 4 (List.length sd.Ast.sd_fields);
  let buf = Option.get (Ast.find_field sd "buf") in
  check_int "array size" 16 buf.Ast.fd_count;
  check_int "field size" 16 (Ast.field_size buf);
  check_int "char align" 1 (Ast.field_align buf)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check string) "mul binds tighter" "1 + 2 * 3" (Pretty.expr_to_string e);
  (match e with
  | Ast.Binop (Ast.Add, Ast.Int_lit (1, _), Ast.Binop (Ast.Mul, _, _, _), _) -> ()
  | _ -> Alcotest.fail "wrong tree for 1 + 2 * 3");
  match Parser.parse_expr "(1 + 2) * 3" with
  | Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, _, _, _), Ast.Int_lit (3, _), _) -> ()
  | _ -> Alcotest.fail "parens ignored"

let test_parse_logic_precedence () =
  match Parser.parse_expr "1 < 2 && 3 < 4 || x == 1" with
  | Ast.Binop (Ast.Or, Ast.Binop (Ast.And, _, _, _), Ast.Binop (Ast.Eq, _, _, _), _)
    -> ()
  | _ -> Alcotest.fail "wrong &&/|| precedence"

let test_parse_for_shape () =
  let src =
    small_struct
    ^ "void f(struct S *s, int n) { for (i = 0; i < n; i++) { s->a = i; } }"
  in
  let p = parse_tc src in
  check_int "one proc" 1 (List.length p.Ast.procs)

let test_parse_for_malformed () =
  let expect_error src =
    match parse (small_struct ^ src) with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("parsed invalid: " ^ src)
  in
  expect_error "void f(struct S *s) { for (i = 1; i < 5; i++) { } }";
  expect_error "void f(struct S *s) { for (i = 0; j < 5; i++) { } }";
  expect_error "void f(struct S *s) { for (i = 0; i < 5; j++) { } }"

let test_parse_errors () =
  let expect_error src =
    match parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("parsed invalid: " ^ src)
  in
  expect_error "struct S { };";
  expect_error "struct S { long a }";
  expect_error "void f() { x = ; }";
  expect_error "int f() { }";
  expect_error "void f(struct S s) { }"

let test_parse_roundtrip_kernel () =
  (* print (parse kernel) must reparse to an equal program (up to locs). *)
  let p1 = parse_tc Slo_workload.Kernel.source in
  let printed = Pretty.program_to_string p1 in
  let p2 = Typecheck.check (parse printed) in
  Alcotest.(check string) "round trip is a fixpoint" printed
    (Pretty.program_to_string p2)

(* ------------------------------------------------------------------ *)
(* Typechecker *)

let expect_tc_error src =
  match parse_tc src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail ("typechecked invalid program:\n" ^ src)

let test_tc_rejects () =
  expect_tc_error "struct S { long a; } ; struct S { long b; };";
  expect_tc_error "struct S { long a; long a; };";
  expect_tc_error (small_struct ^ "void f(struct T *t) { }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { s->zz = 1; }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { x = y + 1; }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { s->a[0] = 1; }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { s->buf = 1; }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { x = s + 1; }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { g(s); }");
  expect_tc_error
    (small_struct ^ "void f(struct S *s) { g(); } void g() { f(); }");
  expect_tc_error (small_struct ^ "void f(struct S *s) { f(s); }");
  expect_tc_error
    (small_struct ^ "void g(int n) { } void f(struct S *s) { g(s); }")

let test_tc_accepts () =
  let src =
    small_struct
    ^ "void g(struct S *s, int k) { s->a = k; }\n\
       void f(struct S *s, int n) {\n\
      \  for (i = 0; i < n; i++) {\n\
      \    s->buf[i % 16] = i;\n\
      \    g(s, i);\n\
      \  }\n\
       }"
  in
  let p = parse_tc src in
  check_int "two procs" 2 (List.length p.Ast.procs)

let test_tc_int_arg_resolution () =
  (* A bare identifier argument that is an integer must be rewritten from
     Arg_inst to Arg_expr. *)
  let src =
    small_struct
    ^ "void g(int k) { x = k; } void f(struct S *s, int n) { g(n); }"
  in
  let p = parse_tc src in
  let f = Option.get (Ast.find_proc p "f") in
  match f.Ast.pd_body with
  | [ Ast.Call { args = [ Ast.Arg_expr (Ast.Var ("n", _)) ]; _ } ] -> ()
  | _ -> Alcotest.fail "int argument not resolved to Arg_expr"

(* ------------------------------------------------------------------ *)
(* CFG *)

let cfg_of src proc =
  let p = parse_tc src in
  List.assoc proc (Cfg.of_program p)

let test_cfg_straight_line () =
  let cfg = cfg_of (small_struct ^ "void f(struct S *s) { s->a = 1; x = s->b; }") "f" in
  check_int "single block" 1 (Cfg.num_blocks cfg);
  let accs = Cfg.accesses cfg in
  check_int "two accesses" 2 (List.length accs);
  let writes = List.filter (fun a -> a.Cfg.a_is_write) accs in
  check_int "one write" 1 (List.length writes);
  Alcotest.(check string) "write field" "a" (List.hd writes).Cfg.a_field

let test_cfg_if_shape () =
  let cfg =
    cfg_of
      (small_struct
     ^ "void f(struct S *s, int n) { if (n > 0) { s->a = 1; } else { s->b = 2; } x = 3; }")
      "f"
  in
  (* entry, then, else, join *)
  check_int "four blocks" 4 (Cfg.num_blocks cfg);
  let entry = Cfg.block cfg cfg.Cfg.entry in
  match entry.Cfg.b_term with
  | Cfg.Tbranch { if_true; if_false; _ } ->
    Alcotest.(check bool) "distinct targets" true (if_true <> if_false)
  | _ -> Alcotest.fail "entry must branch"

let test_cfg_loop_structure () =
  let cfg =
    cfg_of
      (small_struct
     ^ "void f(struct S *s, int n) { for (i = 0; i < n; i++) { s->a = i; } }")
      "f"
  in
  check_int "one loop" 1 (Array.length cfg.Cfg.loops);
  let loop = cfg.Cfg.loops.(0) in
  check_int "depth 1" 1 loop.Cfg.l_depth;
  Alcotest.(check (option int)) "no parent" None loop.Cfg.l_parent;
  (* the store to a sits in a block whose innermost loop is loop 0 *)
  let acc = List.hd (Cfg.accesses cfg) in
  check_int "access inside loop" 1 (Cfg.loop_depth cfg acc.Cfg.a_block)

let test_cfg_nested_loops () =
  let cfg =
    cfg_of
      (small_struct
     ^ "void f(struct S *s, int n) {\n\
        for (i = 0; i < n; i++) {\n\
        for (j = 0; j < n; j++) {\n\
        s->a = i + j;\n\
        }\n\
        }\n\
        }")
      "f"
  in
  check_int "two loops" 2 (Array.length cfg.Cfg.loops);
  let inner =
    Array.to_list cfg.Cfg.loops |> List.find (fun l -> l.Cfg.l_depth = 2)
  in
  Alcotest.(check (option int)) "inner parent is outer" (Some 0) inner.Cfg.l_parent;
  let acc = List.hd (Cfg.accesses cfg) in
  check_int "access at depth 2" 2 (Cfg.loop_depth cfg acc.Cfg.a_block)

let test_cfg_successors_wellformed () =
  let cfg =
    cfg_of
      (small_struct
     ^ "void f(struct S *s, int n) {\n\
        for (i = 0; i < n; i++) {\n\
        if (i % 2 == 0) { s->a = i; }\n\
        }\n\
        }")
      "f"
  in
  Array.iter
    (fun blk ->
      List.iter
        (fun succ ->
          Alcotest.(check bool) "successor in range" true
            (succ >= 0 && succ < Cfg.num_blocks cfg))
        (Cfg.successors blk))
    cfg.Cfg.blocks

(* ------------------------------------------------------------------ *)
(* Eval *)

let compile_expr src =
  (* Build a pexpr by parsing and lowering a one-statement procedure. *)
  let p =
    parse_tc
      (Printf.sprintf
         "struct S { long a; }; void f(struct S *s, int x, int y) { z = %s; }"
         src)
  in
  let cfg = List.assoc "f" (Cfg.of_program p) in
  let blk = Cfg.block cfg cfg.Cfg.entry in
  match blk.Cfg.b_instrs.(0) with
  | Cfg.Iassign { value; _ } -> value
  | _ -> Alcotest.fail "expected assignment"

let test_eval_ops () =
  let lookup = function "x" -> 10 | "y" -> 3 | _ -> 0 in
  let e s = Eval.pexpr ~lookup (compile_expr s) in
  check_int "add" 13 (e "x + y");
  check_int "div" 3 (e "x / y");
  check_int "mod" 1 (e "x % y");
  check_int "cmp true" 1 (e "x > y");
  check_int "cmp false" 0 (e "x < y");
  check_int "and" 1 (e "x && y");
  check_int "or" 1 (e "0 || y");
  check_int "not-eq" 1 (e "x != y")

let test_eval_div_by_zero () =
  let lookup _ = 0 in
  match Eval.pexpr ~lookup (compile_expr "x / y") with
  | exception Eval.Division_by_zero_at _ -> ()
  | _ -> Alcotest.fail "division by zero not raised"

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"print . parse is a fixpoint on random programs"
    ~count:60
    (Gen.minic_program ())
    (fun src ->
      match parse_tc src with
      | exception _ -> QCheck2.assume_fail ()
      | p1 ->
        let printed = Pretty.program_to_string p1 in
        let p2 = Typecheck.check (parse printed) in
        Pretty.program_to_string p2 = printed)

let prop_cfg_blocks_reachable_targets =
  QCheck2.Test.make ~name:"all CFG successor ids are valid" ~count:60
    (Gen.minic_program ())
    (fun src ->
      match parse_tc src with
      | exception _ -> QCheck2.assume_fail ()
      | p ->
        List.for_all
          (fun (_, cfg) ->
            Array.for_all
              (fun blk ->
                List.for_all
                  (fun s -> s >= 0 && s < Cfg.num_blocks cfg)
                  (Cfg.successors blk))
              cfg.Cfg.blocks)
          (Cfg.of_program p))

let prop_accesses_have_declared_fields =
  QCheck2.Test.make ~name:"every access names a declared field" ~count:60
    (Gen.minic_program ())
    (fun src ->
      match parse_tc src with
      | exception _ -> QCheck2.assume_fail ()
      | p ->
        List.for_all
          (fun (_, cfg) ->
            List.for_all
              (fun (a : Cfg.access) ->
                match Ast.find_struct p a.Cfg.a_struct with
                | Some sd -> Ast.find_field sd a.Cfg.a_field <> None
                | None -> false)
              (Cfg.accesses cfg))
          (Cfg.of_program p))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_cfg_blocks_reachable_targets;
      prop_accesses_have_declared_fields ]

let suites =
  [
    ( "ir.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "line tracking" `Quick test_lexer_line_tracking;
        Alcotest.test_case "two-char ops" `Quick test_lexer_two_char_ops;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "ir.parser",
      [
        Alcotest.test_case "struct decl" `Quick test_parse_struct;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "logic precedence" `Quick test_parse_logic_precedence;
        Alcotest.test_case "for loop" `Quick test_parse_for_shape;
        Alcotest.test_case "malformed for" `Quick test_parse_for_malformed;
        Alcotest.test_case "syntax errors" `Quick test_parse_errors;
        Alcotest.test_case "kernel round trip" `Quick test_parse_roundtrip_kernel;
      ] );
    ( "ir.typecheck",
      [
        Alcotest.test_case "rejects invalid" `Quick test_tc_rejects;
        Alcotest.test_case "accepts valid" `Quick test_tc_accepts;
        Alcotest.test_case "int arg resolution" `Quick test_tc_int_arg_resolution;
      ] );
    ( "ir.cfg",
      [
        Alcotest.test_case "straight line" `Quick test_cfg_straight_line;
        Alcotest.test_case "if shape" `Quick test_cfg_if_shape;
        Alcotest.test_case "loop structure" `Quick test_cfg_loop_structure;
        Alcotest.test_case "nested loops" `Quick test_cfg_nested_loops;
        Alcotest.test_case "successors" `Quick test_cfg_successors_wellformed;
      ] );
    ( "ir.eval",
      [
        Alcotest.test_case "operators" `Quick test_eval_ops;
        Alcotest.test_case "division by zero" `Quick test_eval_div_by_zero;
      ] );
    ("ir.properties", props);
  ]

(* ------------------------------------------------------------------ *)
(* Inlining *)

module Inline = Slo_ir.Inline

let inline_src =
  small_struct
  ^ {|
void helper(struct S *p, int k) {
  p->a = p->a + k;
}
void caller(struct S *s, int n) {
  for (i = 0; i < n; i++) {
    x = s->b;
    helper(s, i);
  }
}
|}

let test_inline_removes_calls () =
  let p = Inline.program (parse_tc inline_src) in
  let rec has_call block =
    List.exists
      (fun stmt ->
        match stmt with
        | Ast.Call _ -> true
        | Ast.For { body; _ } -> has_call body
        | Ast.If { then_; else_; _ } ->
          has_call then_ || (match else_ with Some b -> has_call b | None -> false)
        | Ast.Assign _ | Ast.Pause _ -> false)
      block
  in
  List.iter
    (fun (pd : Ast.proc_decl) ->
      Alcotest.(check bool) (pd.Ast.pd_name ^ " call-free") false
        (has_call pd.Ast.pd_body))
    p.Ast.procs;
  (* still a valid program *)
  ignore (Typecheck.check p)

let test_inline_preserves_semantics () =
  let module Interp = Slo_profile.Interp in
  let run program =
    let ctx = Interp.make_ctx program in
    let prng = Slo_util.Prng.create ~seed:1 in
    let s = Interp.make_instance program ~struct_name:"S" in
    Interp.run ctx ~prng ~proc:"caller" [ Interp.Ainst s; Interp.Aint 10 ];
    Interp.get_field s ~field:"a" ()
  in
  let original = parse_tc inline_src in
  check_int "same result" (run original) (run (Inline.program original))

let test_inline_exposes_cross_proc_affinity () =
  (* Before inlining, helper's access to [a] and caller's access to [b] are
     in different procedures: no affinity. After inlining they share the
     caller's loop group. *)
  let module Interp = Slo_profile.Interp in
  let module Counts = Slo_profile.Counts in
  let module Affinity_graph = Slo_affinity.Affinity_graph in
  let affinity program =
    let ctx = Interp.make_ctx program in
    let counts = Counts.create () in
    let prng = Slo_util.Prng.create ~seed:1 in
    let s = Interp.make_instance program ~struct_name:"S" in
    Interp.run ctx ~counts ~prng ~proc:"caller" [ Interp.Ainst s; Interp.Aint 20 ];
    let ag = Affinity_graph.build program counts ~struct_name:"S" in
    Affinity_graph.affinity ag "a" "b"
  in
  let original = parse_tc inline_src in
  Alcotest.(check (float 1e-6)) "no cross-proc affinity before" 0.0
    (affinity original);
  Alcotest.(check bool) "affinity appears after inlining" true
    (affinity (Inline.program original) > 0.0)

let test_inline_nested_and_capture () =
  (* Nested calls and name clashes: both levels use [i] and [t]. *)
  let src =
    small_struct
    ^ {|
void leaf(struct S *p, int t) {
  for (i = 0; i < t; i++) {
    p->c = p->c + 1;
  }
}
void mid(struct S *p, int t) {
  leaf(p, t + 1);
  for (i = 0; i < t; i++) {
    p->a = p->a + 1;
  }
}
void top(struct S *s, int n) {
  for (i = 0; i < n; i++) {
    mid(s, 2);
  }
}
|}
  in
  let module Interp = Slo_profile.Interp in
  let run program =
    let ctx = Interp.make_ctx program in
    let prng = Slo_util.Prng.create ~seed:1 in
    let s = Interp.make_instance program ~struct_name:"S" in
    Interp.run ctx ~prng ~proc:"top" [ Interp.Ainst s; Interp.Aint 3 ];
    (Interp.get_field s ~field:"a" (), Interp.get_field s ~field:"c" ())
  in
  let original = parse_tc src in
  let a0, c0 = run original in
  let a1, c1 = run (Inline.program original) in
  check_int "a matches" a0 a1;
  check_int "c matches" c0 c1;
  check_int "a value" 6 a0;
  check_int "c value" 9 c0

let prop_inline_semantics =
  QCheck2.Test.make ~name:"inlining preserves interpreter results" ~count:40
    (Gen.minic_program ~max_fields:5 ~max_procs:2 ())
    (fun src ->
      match parse_tc src with
      | exception _ -> QCheck2.assume_fail ()
      | p ->
        if Tutil.contains src "rand(" then QCheck2.assume_fail ()
        else begin
          let module Interp = Slo_profile.Interp in
          let run program =
            let ctx = Interp.make_ctx program in
            let prng = Slo_util.Prng.create ~seed:1 in
            let s = Interp.make_instance program ~struct_name:"G" in
            List.iter
              (fun (pd : Ast.proc_decl) ->
                Interp.run ctx ~prng ~proc:pd.Ast.pd_name
                  [ Interp.Ainst s; Interp.Aint 3 ])
              program.Ast.procs;
            let sd = Option.get (Ast.find_struct program "G") in
            List.map
              (fun (fd : Ast.field_decl) -> Interp.get_field s ~field:fd.Ast.fd_name ())
              sd.Ast.sd_fields
          in
          run p = run (Inline.program p)
        end)

let suites =
  suites
  @ [
      ( "ir.inline",
        [
          Alcotest.test_case "removes calls" `Quick test_inline_removes_calls;
          Alcotest.test_case "preserves semantics" `Quick test_inline_preserves_semantics;
          Alcotest.test_case "cross-proc affinity" `Quick test_inline_exposes_cross_proc_affinity;
          Alcotest.test_case "nested + capture" `Quick test_inline_nested_and_capture;
          QCheck_alcotest.to_alcotest prop_inline_semantics;
        ] );
    ]
