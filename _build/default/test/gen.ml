(* Shared QCheck generators for property-based tests. *)

module Ast = Slo_ir.Ast
module Field = Slo_layout.Field

let prim : Ast.prim QCheck2.Gen.t =
  QCheck2.Gen.oneofl [ Ast.Char; Ast.Short; Ast.Int; Ast.Long; Ast.Double; Ast.Ptr ]

let field_name i = Printf.sprintf "f%d" i

(* A list of 1..24 distinct fields with random primitive types and
   occasional small arrays. *)
let fields : Field.t list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 24 in
  let* prims = list_size (return n) prim in
  let* counts =
    list_size (return n) (frequency [ (6, return 1); (1, int_range 2 8) ])
  in
  return
    (List.mapi
       (fun i (p, c) -> Field.make ~name:(field_name i) ~prim:p ~count:c ())
       (List.combine prims counts))

(* Random weighted undirected graph over the nodes of a field list. *)
let edges_over names : (string * string * float) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  match names with
  | [] | [ _ ] -> return []
  | _ ->
    let arr = Array.of_list names in
    let edge =
      let* i = int_range 0 (Array.length arr - 1) in
      let* j = int_range 0 (Array.length arr - 1) in
      let* w = float_range (-100.0) 100.0 in
      return (arr.(i), arr.(j), w)
    in
    let* n = int_range 0 (3 * Array.length arr) in
    let* all = list_size (return n) edge in
    return (List.filter (fun (u, v, _) -> u <> v) all)

(* Hotness assignment for a field list. *)
let hotness_for names : (string * int) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* hs = list_size (return (List.length names)) (int_range 0 1000) in
  return (List.combine names hs)

(* A random well-formed minic program over one struct: a handful of
   procedures made of loops, conditionals, field reads/writes and pauses.
   Used for parser round-trips and interpreter/profile properties. *)
let minic_program ?(max_fields = 8) ?(max_procs = 3) () : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* nfields = int_range 1 max_fields in
  let fields = List.init nfields (fun i -> Printf.sprintf "g%d" i) in
  let field = oneofl fields in
  let rec stmt depth =
    let assign_field =
      let* f = field in
      let* g = field in
      return (Printf.sprintf "s->%s = s->%s + 1;" f g)
    in
    let assign_var =
      let* f = field in
      let* g = field in
      return (Printf.sprintf "x = s->%s + s->%s;" f g)
    in
    let pause =
      let* p = int_range 0 20 in
      return (Printf.sprintf "pause(%d);" p)
    in
    let base = [ (3, assign_field); (3, assign_var); (2, pause) ] in
    if depth = 0 then frequency base
    else
      let loop =
        let* trips = int_range 0 4 in
        let* body = block (depth - 1) in
        return (Printf.sprintf "for (i%d = 0; i%d < %d; i%d++) {\n%s}" depth depth trips depth body)
      in
      let cond =
        let* f = field in
        let* then_ = block (depth - 1) in
        let* else_ = block (depth - 1) in
        return
          (Printf.sprintf "if (s->%s %% 2 == 0) {\n%s} else {\n%s}" f then_ else_)
      in
      frequency ((2, loop) :: (1, cond) :: base)
  and block depth =
    let* n = int_range 1 3 in
    let* stmts = list_size (return n) (stmt depth) in
    return (String.concat "\n" stmts ^ "\n")
  in
  let* nprocs = int_range 1 max_procs in
  let* bodies = list_size (return nprocs) (block 2) in
  let decls =
    String.concat ""
      (List.map (fun f -> Printf.sprintf "  long %s;\n" f) fields)
  in
  let procs =
    List.mapi
      (fun i body -> Printf.sprintf "void p%d(struct G *s, int n) {\n%s}\n" i body)
      bodies
  in
  return (Printf.sprintf "struct G {\n%s};\n%s" decls (String.concat "\n" procs))
