test/test_globals.ml: Alcotest List Option Slo_affinity Slo_concurrency Slo_core Slo_ir Slo_layout Slo_profile Slo_sim Slo_util
