test/test_concurrency.ml: Alcotest List QCheck2 QCheck_alcotest Slo_concurrency Slo_ir
