test/test_core.ml: Alcotest Gen List Printf QCheck2 QCheck_alcotest Slo_affinity Slo_core Slo_graph Slo_ir Slo_layout Slo_profile Slo_util Tutil
