test/test_graph.ml: Alcotest Float List Printf QCheck2 QCheck_alcotest Slo_graph Tutil
