test/tutil.ml: String
