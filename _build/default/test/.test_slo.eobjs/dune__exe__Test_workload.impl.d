test/test_workload.ml: Alcotest Array Float List Option Printf Slo_core Slo_ir Slo_layout Slo_sim Slo_util Slo_workload
