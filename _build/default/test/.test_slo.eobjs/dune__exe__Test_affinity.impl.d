test/test_affinity.ml: Alcotest Gen List QCheck2 QCheck_alcotest Slo_affinity Slo_ir Slo_profile Slo_util
