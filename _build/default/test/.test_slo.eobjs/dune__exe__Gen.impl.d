test/gen.ml: Array List Printf QCheck2 Slo_ir Slo_layout String
