test/test_slo.mli:
