test/test_sim.ml: Alcotest Array Gen List Option QCheck2 QCheck_alcotest Slo_ir Slo_layout Slo_profile Slo_sim Slo_util Tutil
