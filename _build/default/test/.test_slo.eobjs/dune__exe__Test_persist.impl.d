test/test_persist.ml: Alcotest Filename Fun List QCheck2 QCheck_alcotest Slo_concurrency Slo_persist Slo_profile Slo_workload String Sys
