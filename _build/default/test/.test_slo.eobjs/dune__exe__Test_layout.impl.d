test/test_layout.ml: Alcotest Gen List Option QCheck2 QCheck_alcotest Slo_ir Slo_layout
