test/test_profile.ml: Alcotest Array Gen List Printf QCheck2 QCheck_alcotest Slo_ir Slo_profile Slo_util
