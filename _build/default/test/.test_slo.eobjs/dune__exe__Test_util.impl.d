test/test_util.ml: Alcotest Array List QCheck2 QCheck_alcotest Slo_util
