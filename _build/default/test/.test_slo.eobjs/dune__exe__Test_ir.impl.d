test/test_ir.ml: Alcotest Array Gen List Option Printf QCheck2 QCheck_alcotest Slo_affinity Slo_ir Slo_profile Slo_util Slo_workload Tutil
