(* Tests for the global-variable extension: parsing, typechecking,
   interpretation, simulation, and the GVL layout pipeline. *)

module Ast = Slo_ir.Ast
module Parser = Slo_ir.Parser
module Typecheck = Slo_ir.Typecheck
module Cfg = Slo_ir.Cfg
module Pretty = Slo_ir.Pretty
module Interp = Slo_profile.Interp
module Counts = Slo_profile.Counts
module Machine = Slo_sim.Machine
module Topology = Slo_sim.Topology
module Layout = Slo_layout.Layout
module Fmf = Slo_concurrency.Fmf
module Affinity_graph = Slo_affinity.Affinity_graph
module Gvl = Slo_core.Gvl
module Pipeline = Slo_core.Pipeline
module Prng = Slo_util.Prng

let check_int = Alcotest.(check int)

let parse_tc src = Typecheck.check (Parser.parse_program ~file:"t.mc" src)

let src =
  {|
struct S { long a; };
long g_count;
long g_limit;
int g_flag;

void bump(int n) {
  for (i = 0; i < n; i++) {
    g_count = g_count + 1;
  }
}

void watch(struct S *s, int n) {
  for (i = 0; i < n; i++) {
    x = g_limit + g_flag;
    s->a = s->a + x;
  }
}
|}

let test_parse_globals () =
  let p = parse_tc src in
  check_int "three globals" 3 (List.length p.Ast.globals);
  let gs = Option.get (Ast.globals_struct p) in
  Alcotest.(check string) "synthetic struct name" "$globals" gs.Ast.sd_name;
  Alcotest.(check bool) "find_struct resolves it" true
    (Ast.find_struct p Ast.globals_struct_name <> None)

let test_globals_rejects () =
  let expect_error s =
    match parse_tc s with
    | exception Typecheck.Error _ -> ()
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("accepted invalid program:\n" ^ s)
  in
  expect_error "long g; long g; void f(int n) { x = g; }";
  (* globals must be scalars *)
  expect_error "long g[4]; void f(int n) { x = n; }";
  (* shadowing forbidden *)
  expect_error "long g; void f(int g) { x = g; }";
  expect_error "long i; void f(int n) { for (i = 0; i < n; i++) { x = i; } }"

let test_globals_roundtrip () =
  let p1 = parse_tc src in
  let printed = Pretty.program_to_string p1 in
  let p2 = Typecheck.check (Parser.parse_program ~file:"t" printed) in
  Alcotest.(check string) "pretty round trip" printed (Pretty.program_to_string p2)

let test_globals_in_accesses () =
  let p = parse_tc src in
  let cfg = List.assoc "bump" (Cfg.of_program p) in
  let accs = Cfg.accesses cfg in
  check_int "read + write of g_count" 2 (List.length accs);
  List.iter
    (fun (a : Cfg.access) ->
      Alcotest.(check string) "reported under $globals" Ast.globals_struct_name
        a.Cfg.a_struct;
      Alcotest.(check string) "field name" "g_count" a.Cfg.a_field)
    accs

let test_interp_globals () =
  let p = parse_tc src in
  let ctx = Interp.make_ctx p in
  let prng = Prng.create ~seed:1 in
  check_int "zero initialized" 0 (Interp.get_global ctx ~name:"g_count");
  Interp.run ctx ~prng ~proc:"bump" [ Interp.Aint 7 ];
  check_int "incremented" 7 (Interp.get_global ctx ~name:"g_count");
  (* persists across runs on the same ctx *)
  Interp.run ctx ~prng ~proc:"bump" [ Interp.Aint 3 ];
  check_int "accumulates" 10 (Interp.get_global ctx ~name:"g_count");
  Interp.set_global ctx ~name:"g_limit" 42;
  let s = Interp.make_instance p ~struct_name:"S" in
  Interp.run ctx ~prng ~proc:"watch" [ Interp.Ainst s; Interp.Aint 1 ];
  check_int "reads set global" 42 (Interp.get_field s ~field:"a" ())

let test_profile_counts_globals () =
  let p = parse_tc src in
  let ctx = Interp.make_ctx p in
  let counts = Counts.create () in
  let prng = Prng.create ~seed:1 in
  Interp.run ctx ~counts ~prng ~proc:"bump" [ Interp.Aint 5 ];
  let totals = Counts.field_totals counts ~struct_name:Ast.globals_struct_name in
  let rw = List.assoc "g_count" totals in
  check_int "reads" 5 rw.Counts.reads;
  check_int "writes" 5 rw.Counts.writes

let test_machine_globals () =
  let p = parse_tc src in
  let topology = Topology.superdome ~cpus:2 () in
  let m = Machine.create (Machine.default_config topology) p in
  Machine.add_thread m ~cpu:0 ~work:[ ("bump", [ Machine.Aint 9 ]) ];
  ignore (Machine.run m);
  check_int "simulated global value" 9 (Machine.read_global m ~name:"g_count")

let test_machine_global_layout_override () =
  let p = parse_tc src in
  let topology = Topology.superdome ~cpus:2 () in
  let m = Machine.create (Machine.default_config topology) p in
  let fields = Slo_layout.Field.of_struct (Option.get (Ast.globals_struct p)) in
  let spread =
    Layout.of_clusters ~struct_name:Ast.globals_struct_name ~line_size:128
      (List.map (fun f -> [ f ]) fields)
  in
  Machine.set_layout m spread;
  Machine.add_thread m ~cpu:0 ~work:[ ("bump", [ Machine.Aint 4 ]) ];
  ignore (Machine.run m);
  check_int "value correct under override" 4 (Machine.read_global m ~name:"g_count")

let test_fmf_and_affinity_on_globals () =
  let p = parse_tc src in
  let fmf = Fmf.of_program p in
  let lines = Fmf.lines_accessing fmf ~struct_name:Ast.globals_struct_name in
  Alcotest.(check bool) "global lines found" true (List.length lines >= 2);
  let ctx = Interp.make_ctx p in
  let counts = Counts.create () in
  let prng = Prng.create ~seed:1 in
  let s = Interp.make_instance p ~struct_name:"S" in
  Interp.run ctx ~counts ~prng ~proc:"watch" [ Interp.Ainst s; Interp.Aint 10 ];
  let ag = Affinity_graph.build p counts ~struct_name:Ast.globals_struct_name in
  Alcotest.(check bool) "g_limit and g_flag affine" true
    (Affinity_graph.affinity ag "g_limit" "g_flag" > 0.0)

let test_gvl_separates_writer () =
  (* g_count is written concurrently with reads of g_limit/g_flag: the GVL
     layout must not colocate them. *)
  let p = parse_tc src in
  let ctx = Interp.make_ctx p in
  let counts = Counts.create () in
  let prng = Prng.create ~seed:1 in
  let s = Interp.make_instance p ~struct_name:"S" in
  Interp.run ctx ~counts ~prng ~proc:"bump" [ Interp.Aint 32 ];
  Interp.run ctx ~counts ~prng ~proc:"watch" [ Interp.Ainst s; Interp.Aint 32 ];
  (* sampling run: one bumper, three watchers *)
  let topology = Topology.superdome ~cpus:4 () in
  let m =
    Machine.create
      { (Machine.default_config topology) with Machine.sample_period = Some 150 }
      p
  in
  let inst = Machine.alloc m ~struct_name:"S" in
  Machine.add_thread m ~cpu:0 ~work:(List.init 80 (fun _ -> ("bump", [ Machine.Aint 10 ])));
  for cpu = 1 to 3 do
    Machine.add_thread m ~cpu
      ~work:(List.init 80 (fun _ -> ("watch", [ Machine.Ainst inst; Machine.Aint 10 ])))
  done;
  let r = Machine.run m in
  let samples =
    List.map
      (fun (smp : Machine.sample) ->
        { Slo_concurrency.Sample.cpu = smp.Machine.s_cpu; itc = smp.Machine.s_itc;
          line = smp.Machine.s_line })
      r.Machine.samples
  in
  let params =
    { Pipeline.default_params with Pipeline.k2 = 2.0; cc_interval = 1500 }
  in
  let flg = Gvl.analyze ~params ~program:p ~counts ~samples () in
  let layout = Gvl.automatic_layout ~params flg in
  Layout.check_invariants layout;
  Alcotest.(check bool) "writer separated from read pair" false
    (Layout.same_line layout ~line_size:128 "g_count" "g_limit");
  Alcotest.(check bool) "read pair colocated" true
    (Layout.same_line layout ~line_size:128 "g_limit" "g_flag")

let test_gvl_requires_globals () =
  let p = parse_tc "struct S { long a; }; void f(struct S *s) { s->a = 1; }" in
  (match Gvl.declared_layout p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted program without globals");
  match
    Gvl.analyze ~program:p ~counts:(Counts.create ()) ~samples:[] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "analyze accepted program without globals"

let suites =
  [
    ( "globals",
      [
        Alcotest.test_case "parsing" `Quick test_parse_globals;
        Alcotest.test_case "rejections" `Quick test_globals_rejects;
        Alcotest.test_case "round trip" `Quick test_globals_roundtrip;
        Alcotest.test_case "accesses" `Quick test_globals_in_accesses;
        Alcotest.test_case "interpreter" `Quick test_interp_globals;
        Alcotest.test_case "profile counts" `Quick test_profile_counts_globals;
        Alcotest.test_case "machine" `Quick test_machine_globals;
        Alcotest.test_case "layout override" `Quick test_machine_global_layout_override;
        Alcotest.test_case "fmf/affinity" `Quick test_fmf_and_affinity_on_globals;
        Alcotest.test_case "gvl separates writer" `Quick test_gvl_separates_writer;
        Alcotest.test_case "gvl needs globals" `Quick test_gvl_requires_globals;
      ] );
  ]
