(* Tests for Slo_profile: the run-to-completion interpreter and counts. *)

module Ast = Slo_ir.Ast
module Cfg = Slo_ir.Cfg
module Parser = Slo_ir.Parser
module Typecheck = Slo_ir.Typecheck
module Interp = Slo_profile.Interp
module Counts = Slo_profile.Counts
module Prng = Slo_util.Prng

let check_int = Alcotest.(check int)

let parse_tc src = Typecheck.check (Parser.parse_program ~file:"t.mc" src)

let run ?counts src proc args =
  let p = parse_tc src in
  let ctx = Interp.make_ctx p in
  let prng = Prng.create ~seed:5 in
  let inst = Interp.make_instance p ~struct_name:"S" in
  Interp.run ctx ?counts ~prng ~proc (Interp.Ainst inst :: args);
  (p, inst)

let struct_s = "struct S { long a; long b; long arr[4]; };\n"

let test_store_load () =
  let src = struct_s ^ "void f(struct S *s) { s->a = 41; s->b = s->a + 1; }" in
  let _, inst = run src "f" [] in
  check_int "a" 41 (Interp.get_field inst ~field:"a" ());
  check_int "b" 42 (Interp.get_field inst ~field:"b" ())

let test_loop_arithmetic () =
  let src =
    struct_s
    ^ "void f(struct S *s, int n) { for (i = 0; i < n; i++) { s->a = s->a + i; } }"
  in
  let _, inst = run src "f" [ Interp.Aint 10 ] in
  check_int "sum 0..9" 45 (Interp.get_field inst ~field:"a" ())

let test_array_access () =
  let src =
    struct_s
    ^ "void f(struct S *s, int n) {\n\
       for (i = 0; i < n; i++) { s->arr[i] = i * 2; }\n\
       s->a = s->arr[3];\n\
       }"
  in
  let _, inst = run src "f" [ Interp.Aint 4 ] in
  check_int "arr[2]" 4 (Interp.get_field inst ~field:"arr" ~index:2 ());
  check_int "a = arr[3]" 6 (Interp.get_field inst ~field:"a" ())

let test_call_semantics () =
  let src =
    struct_s
    ^ "void inc(struct S *s, int k) { s->a = s->a + k; }\n\
       void f(struct S *s) { inc(s, 5); inc(s, 7); }"
  in
  let _, inst = run src "f" [] in
  check_int "a" 12 (Interp.get_field inst ~field:"a" ())

let test_conditionals () =
  let src =
    struct_s
    ^ "void f(struct S *s, int n) {\n\
       if (n % 2 == 0) { s->a = 1; } else { s->b = 1; }\n\
       }"
  in
  let _, i1 = run src "f" [ Interp.Aint 4 ] in
  check_int "even -> a" 1 (Interp.get_field i1 ~field:"a" ());
  check_int "even -> b untouched" 0 (Interp.get_field i1 ~field:"b" ());
  let _, i2 = run src "f" [ Interp.Aint 3 ] in
  check_int "odd -> b" 1 (Interp.get_field i2 ~field:"b" ())

let test_runtime_errors () =
  let expect_error src args =
    match run src "f" args with
    | exception Interp.Runtime_error _ -> ()
    | _ -> Alcotest.fail "runtime error not raised"
  in
  expect_error (struct_s ^ "void f(struct S *s, int n) { s->a = 1 / n; }")
    [ Interp.Aint 0 ];
  expect_error (struct_s ^ "void f(struct S *s, int n) { s->arr[n] = 1; }")
    [ Interp.Aint 9 ];
  expect_error (struct_s ^ "void f(struct S *s, int n) { x = rand(n); }")
    [ Interp.Aint 0 ]

let test_rand_determinism () =
  let src = struct_s ^ "void f(struct S *s) { s->a = rand(1000); }" in
  let _, i1 = run src "f" [] in
  let _, i2 = run src "f" [] in
  check_int "same seed, same rand"
    (Interp.get_field i1 ~field:"a" ())
    (Interp.get_field i2 ~field:"a" ())

(* ------------------------------------------------------------------ *)
(* Counts *)

let test_block_counts () =
  let counts = Counts.create () in
  let src =
    struct_s
    ^ "void f(struct S *s, int n) { for (i = 0; i < n; i++) { s->a = i; } }"
  in
  let _ = run ~counts src "f" [ Interp.Aint 7 ] in
  check_int "entry once" 1 (Counts.proc_entry_count counts ~proc:"f");
  (* Find the loop body block via its field write. *)
  let p = parse_tc src in
  let cfg = List.assoc "f" (Cfg.of_program p) in
  let acc = List.hd (Cfg.accesses cfg) in
  check_int "body runs n times" 7
    (Counts.block_count counts ~proc:"f" ~block:acc.Cfg.a_block)

let test_field_counts () =
  let counts = Counts.create () in
  let src =
    struct_s
    ^ "void f(struct S *s, int n) {\n\
       for (i = 0; i < n; i++) { s->b = s->a + s->b; }\n\
       }"
  in
  let _ = run ~counts src "f" [ Interp.Aint 5 ] in
  let totals = Counts.field_totals counts ~struct_name:"S" in
  let rw name = List.assoc name totals in
  check_int "a reads" 5 (rw "a").Counts.reads;
  check_int "a writes" 0 (rw "a").Counts.writes;
  check_int "b reads" 5 (rw "b").Counts.reads;
  check_int "b writes" 5 (rw "b").Counts.writes

let test_edge_flow_conservation () =
  (* For every non-entry, non-exit block: in-flow = out-flow = count. *)
  let counts = Counts.create () in
  let src =
    struct_s
    ^ "void f(struct S *s, int n) {\n\
       for (i = 0; i < n; i++) {\n\
       if (i % 2 == 0) { s->a = i; } else { s->b = i; }\n\
       }\n\
       }"
  in
  let _ = run ~counts src "f" [ Interp.Aint 9 ] in
  let p = parse_tc src in
  let cfg = List.assoc "f" (Cfg.of_program p) in
  Array.iter
    (fun (blk : Cfg.block) ->
      let out_flow =
        List.fold_left
          (fun acc dst ->
            acc + Counts.edge_count counts ~proc:"f" ~src:blk.Cfg.b_id ~dst)
          0 (Cfg.successors blk)
      in
      let count = Counts.block_count counts ~proc:"f" ~block:blk.Cfg.b_id in
      if Cfg.successors blk <> [] then
        check_int
          (Printf.sprintf "flow conservation at B%d" blk.Cfg.b_id)
          count out_flow)
    cfg.Cfg.blocks

let test_counts_merge () =
  let c1 = Counts.create () and c2 = Counts.create () in
  Counts.bump_block c1 ~proc:"f" ~block:0;
  Counts.bump_block c2 ~proc:"f" ~block:0;
  Counts.bump_block c2 ~proc:"f" ~block:1;
  Counts.bump_field c1 ~proc:"f" ~block:0 ~struct_name:"S" ~field:"a" ~is_write:true;
  Counts.bump_field c2 ~proc:"f" ~block:0 ~struct_name:"S" ~field:"a" ~is_write:false;
  let m = Counts.merge c1 c2 in
  check_int "blocks sum" 2 (Counts.block_count m ~proc:"f" ~block:0);
  check_int "other block" 1 (Counts.block_count m ~proc:"f" ~block:1);
  let rw = Counts.field_rw m ~proc:"f" ~block:0 ~struct_name:"S" ~field:"a" in
  check_int "merged reads" 1 rw.Counts.reads;
  check_int "merged writes" 1 rw.Counts.writes

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_interp_total =
  QCheck2.Test.make ~name:"random programs run to completion with counts"
    ~count:60
    (Gen.minic_program ())
    (fun src ->
      match parse_tc src with
      | exception _ -> QCheck2.assume_fail ()
      | p ->
        let counts = Counts.create () in
        let ctx = Interp.make_ctx p in
        let prng = Prng.create ~seed:1 in
        let inst = Interp.make_instance p ~struct_name:"G" in
        List.iter
          (fun (pd : Ast.proc_decl) ->
            Interp.run ctx ~counts ~prng ~proc:pd.Ast.pd_name
              [ Interp.Ainst inst; Interp.Aint 3 ])
          p.Ast.procs;
        (* every proc entry counted exactly once *)
        List.for_all
          (fun (pd : Ast.proc_decl) ->
            Counts.proc_entry_count counts ~proc:pd.Ast.pd_name >= 1)
          p.Ast.procs)

let prop_flow_conservation =
  QCheck2.Test.make ~name:"edge counts conserve flow on random programs"
    ~count:60
    (Gen.minic_program ())
    (fun src ->
      match parse_tc src with
      | exception _ -> QCheck2.assume_fail ()
      | p ->
        let counts = Counts.create () in
        let ctx = Interp.make_ctx p in
        let prng = Prng.create ~seed:2 in
        let inst = Interp.make_instance p ~struct_name:"G" in
        List.iter
          (fun (pd : Ast.proc_decl) ->
            Interp.run ctx ~counts ~prng ~proc:pd.Ast.pd_name
              [ Interp.Ainst inst; Interp.Aint 3 ])
          p.Ast.procs;
        List.for_all
          (fun (pd : Ast.proc_decl) ->
            let proc = pd.Ast.pd_name in
            let cfg = List.assoc proc (Cfg.of_program p) in
            Array.for_all
              (fun (blk : Cfg.block) ->
                match Cfg.successors blk with
                | [] -> true
                | succs ->
                  let out_flow =
                    List.fold_left
                      (fun acc dst ->
                        acc + Counts.edge_count counts ~proc ~src:blk.Cfg.b_id ~dst)
                      0 succs
                  in
                  out_flow = Counts.block_count counts ~proc ~block:blk.Cfg.b_id)
              cfg.Cfg.blocks)
          p.Ast.procs)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_interp_total; prop_flow_conservation ]

let suites =
  [
    ( "profile.interp",
      [
        Alcotest.test_case "store/load" `Quick test_store_load;
        Alcotest.test_case "loop arithmetic" `Quick test_loop_arithmetic;
        Alcotest.test_case "arrays" `Quick test_array_access;
        Alcotest.test_case "calls" `Quick test_call_semantics;
        Alcotest.test_case "conditionals" `Quick test_conditionals;
        Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
        Alcotest.test_case "rand determinism" `Quick test_rand_determinism;
      ] );
    ( "profile.counts",
      [
        Alcotest.test_case "block counts" `Quick test_block_counts;
        Alcotest.test_case "field counts" `Quick test_field_counts;
        Alcotest.test_case "flow conservation" `Quick test_edge_flow_conservation;
        Alcotest.test_case "merge" `Quick test_counts_merge;
      ] );
    ("profile.properties", props);
  ]
