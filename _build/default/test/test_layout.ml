(* Tests for Slo_layout: field descriptors and layout computation. *)

module Ast = Slo_ir.Ast
module Field = Slo_layout.Field
module Layout = Slo_layout.Layout

let check_int = Alcotest.(check int)
let fld ?(count = 1) name prim = Field.make ~name ~prim ~count ()

let test_field_sizes () =
  check_int "char" 1 (Field.size (fld "a" Ast.Char));
  check_int "short" 2 (Field.size (fld "a" Ast.Short));
  check_int "int" 4 (Field.size (fld "a" Ast.Int));
  check_int "long" 8 (Field.size (fld "a" Ast.Long));
  check_int "double" 8 (Field.size (fld "a" Ast.Double));
  check_int "ptr" 8 (Field.size (fld "a" Ast.Ptr));
  check_int "array size" 24 (Field.size (fld ~count:3 "a" Ast.Long));
  check_int "array align" 8 (Field.align (fld ~count:3 "a" Ast.Long));
  Alcotest.check_raises "bad count"
    (Invalid_argument "Field.make: count must be positive") (fun () ->
      ignore (fld ~count:0 "a" Ast.Int))

let test_c_padding () =
  (* char, long, int, short: classic padding pattern. *)
  let l =
    Layout.of_fields ~struct_name:"S"
      [ fld "c" Ast.Char; fld "l" Ast.Long; fld "i" Ast.Int; fld "s" Ast.Short ]
  in
  check_int "c at 0" 0 (Layout.offset_of l "c");
  check_int "l at 8" 8 (Layout.offset_of l "l");
  check_int "i at 16" 16 (Layout.offset_of l "i");
  check_int "s at 20" 20 (Layout.offset_of l "s");
  check_int "size padded to align" 24 l.Layout.size;
  check_int "align" 8 l.Layout.align;
  check_int "padding bytes" 9 (Layout.padding_bytes l);
  Layout.check_invariants l

let test_packed_no_padding () =
  let l = Layout.of_fields ~struct_name:"S" [ fld "a" Ast.Long; fld "b" Ast.Long ] in
  check_int "no padding" 0 (Layout.padding_bytes l);
  check_int "size" 16 l.Layout.size

let test_of_struct_declaration_order () =
  let p =
    Slo_ir.Typecheck.check
      (Slo_ir.Parser.parse_program ~file:"t"
         "struct S { int a; char b; long c; };")
  in
  let l = Layout.of_struct (Option.get (Ast.find_struct p "S")) in
  Alcotest.(check (list string)) "declaration order" [ "a"; "b"; "c" ]
    (Layout.field_names l);
  check_int "c aligned" 8 (Layout.offset_of l "c")

let test_duplicates_rejected () =
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Layout: duplicate field \"a\"") (fun () ->
      ignore (Layout.of_fields ~struct_name:"S" [ fld "a" Ast.Int; fld "a" Ast.Long ]))

let test_of_clusters () =
  let l =
    Layout.of_clusters ~struct_name:"S" ~line_size:64
      [ [ fld "a" Ast.Long; fld "b" Ast.Long ]; [ fld "c" Ast.Long ];
        [ fld "d" Ast.Char ] ]
  in
  check_int "a line 0" 0 (Layout.cache_line_of l ~line_size:64 "a");
  check_int "c line 1" 1 (Layout.cache_line_of l ~line_size:64 "c");
  check_int "d line 2" 2 (Layout.cache_line_of l ~line_size:64 "d");
  check_int "size = whole lines" 192 l.Layout.size;
  Alcotest.(check bool) "a,b colocated" true (Layout.same_line l ~line_size:64 "a" "b");
  Alcotest.(check bool) "b,c separated" false (Layout.same_line l ~line_size:64 "b" "c");
  Layout.check_invariants l

let test_of_segments () =
  let l =
    Layout.of_segments ~struct_name:"S" ~line_size:64
      [
        Layout.Line_start [ fld "a" Ast.Long ];
        Layout.Packed [ fld "b" Ast.Long ];
        Layout.Line_start [ fld "c" Ast.Long ];
        Layout.Packed [ fld "d" Ast.Long ];
      ]
  in
  (* b continues on a's line; c starts fresh; d continues on c's line. *)
  check_int "a at 0" 0 (Layout.offset_of l "a");
  check_int "b at 8" 8 (Layout.offset_of l "b");
  check_int "c at 64" 64 (Layout.offset_of l "c");
  check_int "d at 72" 72 (Layout.offset_of l "d");
  Layout.check_invariants l

let test_reorder () =
  let l = Layout.of_fields ~struct_name:"S" [ fld "a" Ast.Long; fld "b" Ast.Int ] in
  let r = Layout.reorder l ~order:[ "b"; "a" ] in
  check_int "b first" 0 (Layout.offset_of r "b");
  check_int "a aligned after" 8 (Layout.offset_of r "a");
  Alcotest.check_raises "incomplete order"
    (Invalid_argument "Layout.reorder: order does not cover all fields")
    (fun () -> ignore (Layout.reorder l ~order:[ "a" ]))

let test_lines_and_straddle () =
  let l =
    Layout.of_fields ~struct_name:"S" [ fld ~count:20 "big" Ast.Long; fld "x" Ast.Long ]
  in
  check_int "lines" 2 (Layout.lines_used l ~line_size:128);
  Alcotest.(check bool) "big straddles" true (Layout.straddles_line l ~line_size:128 "big");
  Alcotest.(check bool) "x does not" false (Layout.straddles_line l ~line_size:128 "x");
  Alcotest.(check (list string)) "fields on line 1" [ "x" ]
    (List.map (fun (f : Field.t) -> f.Field.name) (Layout.fields_on_line l ~line_size:128 1))

let test_packed_size () =
  (* extent up to the last byte, no tail padding: c@0, l@8, i@16..19 *)
  check_int "respects alignment" 20
    (Layout.packed_size [ fld "c" Ast.Char; fld "l" Ast.Long; fld "i" Ast.Int ]);
  check_int "empty" 0 (Layout.packed_size [])

let test_equal_order () =
  let l1 = Layout.of_fields ~struct_name:"S" [ fld "a" Ast.Long; fld "b" Ast.Int ] in
  let l2 = Layout.of_fields ~struct_name:"S" [ fld "a" Ast.Long; fld "b" Ast.Int ] in
  let l3 = Layout.of_fields ~struct_name:"S" [ fld "b" Ast.Int; fld "a" Ast.Long ] in
  Alcotest.(check bool) "equal" true (Layout.equal_order l1 l2);
  Alcotest.(check bool) "different" false (Layout.equal_order l1 l3)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_invariants =
  QCheck2.Test.make ~name:"of_fields always satisfies invariants" ~count:300
    Gen.fields (fun fields ->
      let l = Layout.of_fields ~struct_name:"S" fields in
      Layout.check_invariants l;
      true)

let prop_size_bounds =
  QCheck2.Test.make ~name:"size within [sum, sum + n*align] bounds" ~count:300
    Gen.fields (fun fields ->
      let l = Layout.of_fields ~struct_name:"S" fields in
      let content = List.fold_left (fun a f -> a + Field.size f) 0 fields in
      l.Layout.size >= content
      && l.Layout.size <= content + (8 * (List.length fields + 1)))

let prop_clusters_line_aligned =
  QCheck2.Test.make ~name:"of_clusters: every cluster starts a fresh line"
    ~count:200
    QCheck2.Gen.(
      let* fields = Gen.fields in
      let* cuts = int_range 1 4 in
      return (fields, cuts))
    (fun (fields, cuts) ->
      (* split into [cuts] contiguous non-empty chunks *)
      let n = List.length fields in
      let size = max 1 (n / cuts) in
      let rec split i acc rest =
        match rest with
        | [] -> List.rev acc
        | _ ->
          let chunk = List.filteri (fun j _ -> j < size) rest in
          let rest' = List.filteri (fun j _ -> j >= size) rest in
          split (i + 1) (chunk :: acc) rest'
      in
      let clusters = List.filter (( <> ) []) (split 0 [] fields) in
      let l = Layout.of_clusters ~struct_name:"S" ~line_size:128 clusters in
      Layout.check_invariants l;
      List.for_all
        (fun cluster ->
          let first = (List.hd cluster).Field.name in
          Layout.offset_of l first mod 128 = 0)
        clusters)

let prop_reorder_identity =
  QCheck2.Test.make ~name:"reorder to same order is identity" ~count:200
    Gen.fields (fun fields ->
      let l = Layout.of_fields ~struct_name:"S" fields in
      Layout.equal_order l (Layout.reorder l ~order:(Layout.field_names l)))

let prop_same_line_consistent =
  QCheck2.Test.make ~name:"same_line agrees with cache_line_of" ~count:200
    Gen.fields (fun fields ->
      let l = Layout.of_fields ~struct_name:"S" fields in
      let names = Layout.field_names l in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Layout.same_line l ~line_size:128 a b
              = (Layout.cache_line_of l ~line_size:128 a
                 = Layout.cache_line_of l ~line_size:128 b))
            names)
        names)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_invariants; prop_size_bounds; prop_clusters_line_aligned;
      prop_reorder_identity; prop_same_line_consistent ]

let suites =
  [
    ( "layout.basics",
      [
        Alcotest.test_case "field sizes" `Quick test_field_sizes;
        Alcotest.test_case "C padding" `Quick test_c_padding;
        Alcotest.test_case "packed" `Quick test_packed_no_padding;
        Alcotest.test_case "of_struct" `Quick test_of_struct_declaration_order;
        Alcotest.test_case "duplicates" `Quick test_duplicates_rejected;
        Alcotest.test_case "of_clusters" `Quick test_of_clusters;
        Alcotest.test_case "of_segments" `Quick test_of_segments;
        Alcotest.test_case "reorder" `Quick test_reorder;
        Alcotest.test_case "lines/straddle" `Quick test_lines_and_straddle;
        Alcotest.test_case "packed_size" `Quick test_packed_size;
        Alcotest.test_case "equal_order" `Quick test_equal_order;
      ] );
    ("layout.properties", props);
  ]
