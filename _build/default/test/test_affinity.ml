(* Tests for Slo_affinity: affinity groups, Minimum Heuristic, Figure 5. *)

module Parser = Slo_ir.Parser
module Typecheck = Slo_ir.Typecheck
module Interp = Slo_profile.Interp
module Counts = Slo_profile.Counts
module Group = Slo_affinity.Group
module Affinity_graph = Slo_affinity.Affinity_graph
module Prng = Slo_util.Prng

let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

let profile src ~entries ~loop_n =
  let p = Typecheck.check (Parser.parse_program ~file:"t.mc" src) in
  let counts = Counts.create () in
  let ctx = Interp.make_ctx p in
  let prng = Prng.create ~seed:1 in
  let s = Interp.make_instance p ~struct_name:"S" in
  for _ = 1 to entries do
    Interp.run ctx ~counts ~prng ~proc:"f" [ Interp.Ainst s; Interp.Aint loop_n ]
  done;
  (p, counts)

(* The paper's Figure 4 program. *)
let fig4 =
  {|
struct S { long f1; long f2; long f3; };
void f(struct S *s, int n) {
  s->f1 = 1;
  s->f2 = 2;
  for (i = 0; i < n; i++) {
    s->f3 = i;
    x = s->f3 + s->f1;
    y = s->f3;
  }
}
|}

let test_figure5_groups () =
  let p, counts = profile fig4 ~entries:10 ~loop_n:100 in
  let groups = Group.of_program p counts ~struct_name:"S" in
  check_int "two groups" 2 (List.length groups);
  let straight =
    List.find (fun g -> g.Group.g_kind = Group.Straight_line) groups
  in
  let loop =
    List.find (fun g -> g.Group.g_kind <> Group.Straight_line) groups
  in
  check_int "straight weight = entry count" 10 straight.Group.g_weight;
  check_int "loop weight = EC" 1000 loop.Group.g_weight;
  (* straight-line group: f1 and f2, one write each per entry *)
  check_int "f1 W in straight" 10 (Group.field_refs straight "f1").Counts.writes;
  check_int "f2 W in straight" 10 (Group.field_refs straight "f2").Counts.writes;
  check_int "f3 not in straight" 0 (Group.refs (Group.field_refs straight "f3"));
  (* loop group: f1 read once, f3 read twice + written once per iteration *)
  check_int "f1 R in loop" 1000 (Group.field_refs loop "f1").Counts.reads;
  check_int "f3 R in loop" 2000 (Group.field_refs loop "f3").Counts.reads;
  check_int "f3 W in loop" 1000 (Group.field_refs loop "f3").Counts.writes

let test_figure5_graph () =
  let p, counts = profile fig4 ~entries:10 ~loop_n:100 in
  let ag = Affinity_graph.build p counts ~struct_name:"S" in
  (* Minimum Heuristic: w(f1,f2) = min(10, 10); w(f1,f3) = min(1000, 3000). *)
  checkf "f1-f2 = n" 10.0 (Affinity_graph.affinity ag "f1" "f2");
  checkf "f1-f3 = N" 1000.0 (Affinity_graph.affinity ag "f1" "f3");
  checkf "f2-f3 absent" 0.0 (Affinity_graph.affinity ag "f2" "f3");
  check_int "h(f1) = N + n" 1010 (Affinity_graph.hotness_of ag "f1");
  check_int "h(f2) = n" 10 (Affinity_graph.hotness_of ag "f2");
  check_int "h(f3) = 3N" 3000 (Affinity_graph.hotness_of ag "f3")

let test_minimum_heuristic_asymmetric () =
  (* One field touched 3x per iteration, another once: affinity = min. *)
  let src =
    {|
struct S { long a; long b; long c; };
void f(struct S *s, int n) {
  for (i = 0; i < n; i++) {
    x = s->a + s->a + s->a + s->b;
    pause(1);
  }
}
|}
  in
  let p, counts = profile src ~entries:1 ~loop_n:50 in
  let ag = Affinity_graph.build p counts ~struct_name:"S" in
  checkf "min(150, 50)" 50.0 (Affinity_graph.affinity ag "a" "b")

let test_require_read_drops_write_write () =
  (* Two fields only ever written in the same loop: affinity only without
     require_read (the §2 store rule). *)
  let src =
    {|
struct S { long a; long b; long c; };
void f(struct S *s, int n) {
  for (i = 0; i < n; i++) {
    s->a = i;
    s->b = i;
  }
}
|}
  in
  let p, counts = profile src ~entries:1 ~loop_n:20 in
  let lax = Affinity_graph.build ~require_read:false p counts ~struct_name:"S" in
  let strict = Affinity_graph.build ~require_read:true p counts ~struct_name:"S" in
  checkf "affinity without rule" 20.0 (Affinity_graph.affinity lax "a" "b");
  checkf "no gain for store-store" 0.0 (Affinity_graph.affinity strict "a" "b")

let test_unreferenced_fields_are_isolated_nodes () =
  let p, counts = profile fig4 ~entries:1 ~loop_n:5 in
  let src_fields = [ "f1"; "f2"; "f3" ] in
  let ag = Affinity_graph.build p counts ~struct_name:"S" in
  Alcotest.(check (list string))
    "all fields present" src_fields
    (List.map fst ag.Affinity_graph.hotness)

let test_groups_separate_loops () =
  (* Fields in two different loops of the same proc form separate groups:
     no affinity across them. *)
  let src =
    {|
struct S { long a; long b; long c; };
void f(struct S *s, int n) {
  for (i = 0; i < n; i++) { x = s->a; pause(1); }
  for (j = 0; j < n; j++) { y = s->b; pause(1); }
}
|}
  in
  let p, counts = profile src ~entries:1 ~loop_n:30 in
  let ag = Affinity_graph.build p counts ~struct_name:"S" in
  checkf "no cross-loop affinity" 0.0 (Affinity_graph.affinity ag "a" "b")

let test_nested_loop_inner_group () =
  (* A field accessed only in the inner loop must not join the outer
     group. *)
  let src =
    {|
struct S { long outer; long inner; long c; };
void f(struct S *s, int n) {
  for (i = 0; i < n; i++) {
    x = s->outer;
    for (j = 0; j < n; j++) {
      y = s->inner;
      pause(1);
    }
  }
}
|}
  in
  let p, counts = profile src ~entries:1 ~loop_n:8 in
  let groups = Group.of_program p counts ~struct_name:"S" in
  (* straight-line group is empty (dropped); outer and inner loop groups. *)
  check_int "two loop groups" 2 (List.length groups);
  let ag = Affinity_graph.build p counts ~struct_name:"S" in
  checkf "inner and outer not affine" 0.0
    (Affinity_graph.affinity ag "outer" "inner")

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_affinity_bounded_by_hotness =
  QCheck2.Test.make
    ~name:"affinity(f,g) <= min(hotness f, hotness g) on random programs"
    ~count:50
    (Gen.minic_program ())
    (fun src ->
      match Typecheck.check (Parser.parse_program ~file:"t" src) with
      | exception _ -> QCheck2.assume_fail ()
      | p ->
        let counts = Counts.create () in
        let ctx = Interp.make_ctx p in
        let prng = Prng.create ~seed:3 in
        let inst = Interp.make_instance p ~struct_name:"G" in
        List.iter
          (fun (pd : Slo_ir.Ast.proc_decl) ->
            Interp.run ctx ~counts ~prng ~proc:pd.Slo_ir.Ast.pd_name
              [ Interp.Ainst inst; Interp.Aint 4 ])
          p.Slo_ir.Ast.procs;
        let ag = Affinity_graph.build p counts ~struct_name:"G" in
        let fields = List.map fst ag.Affinity_graph.hotness in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                a = b
                || Affinity_graph.affinity ag a b
                   <= float_of_int
                        (min
                           (Affinity_graph.hotness_of ag a)
                           (Affinity_graph.hotness_of ag b))
                      +. 1e-6)
              fields)
          fields)

let props = List.map QCheck_alcotest.to_alcotest [ prop_affinity_bounded_by_hotness ]

let suites =
  [
    ( "affinity",
      [
        Alcotest.test_case "figure 5 groups" `Quick test_figure5_groups;
        Alcotest.test_case "figure 5 graph" `Quick test_figure5_graph;
        Alcotest.test_case "minimum heuristic" `Quick test_minimum_heuristic_asymmetric;
        Alcotest.test_case "store rule" `Quick test_require_read_drops_write_write;
        Alcotest.test_case "isolated fields" `Quick test_unreferenced_fields_are_isolated_nodes;
        Alcotest.test_case "separate loops" `Quick test_groups_separate_loops;
        Alcotest.test_case "nested loops" `Quick test_nested_loop_inner_group;
      ] );
    ("affinity.properties", props);
  ]
