(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figures 8, 9, 10), the §4.3 CC-stability claim and the §5.1 machine
   characterization, plus ablations over the design choices DESIGN.md calls
   out, and Bechamel microbenchmarks of the tool's own kernels.

   Usage:
     dune exec bench/main.exe              # everything (a few minutes)
     dune exec bench/main.exe -- fig8      # one section
     dune exec bench/main.exe -- quick     # smaller machines / fewer runs
     dune exec bench/main.exe -- --jobs 4  # parallel simulator runs
     dune exec bench/main.exe -- --json b.json   # JSON artifacts + manifest

   --jobs N (or SLO_JOBS=N; default Domain.recommended_domain_count) fans
   independent simulator runs and per-struct analyses across a domain
   pool. Results are byte-identical for every N — the `smoke` section and
   test/test_exec.ml verify exactly that.

   Absolute numbers are simulator cycles, not HP hardware; the shapes (who
   wins, by what factor, where effects vanish) are the reproduction target.
   See EXPERIMENTS.md for the paper-vs-measured record. *)

module Exp = Slo_workload.Experiments
module Collect = Slo_workload.Collect
module Kernel = Slo_workload.Kernel
module Sdet = Slo_workload.Sdet
module Topology = Slo_sim.Topology
module Layout = Slo_layout.Layout
module Field = Slo_layout.Field
module Cluster = Slo_core.Cluster
module Pipeline = Slo_core.Pipeline
module Code_concurrency = Slo_concurrency.Code_concurrency
module Sample = Slo_concurrency.Sample
module Sample_store = Slo_concurrency.Sample_store
module Parser = Slo_ir.Parser
module Typecheck = Slo_ir.Typecheck
module Stats = Slo_util.Stats
module Pool = Slo_exec.Pool
module Obs = Slo_obs.Obs
module Json = Slo_obs.Json

let quick = ref false
let jobs = ref 0 (* 0 = SLO_JOBS / Domain.recommended_domain_count *)
let json_path = ref None (* --json PATH: manifest path; artifacts go next to it *)

let runs () = if !quick then 3 else 10
let big_cpus () = if !quick then 32 else 128

let effective_jobs () = if !jobs >= 1 then !jobs else Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* JSON bench artifacts (--json PATH). Each section writes
   BENCH_<section>.json beside PATH with its data rows plus a metrics
   snapshot; PATH itself gets a manifest listing what was written.
   Artifacts exist to be diffed across commits — see EXPERIMENTS.md. *)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

(* Resolve HEAD without invoking git, so the bench works where git is
   absent (sandboxed dune actions, stripped containers) and costs no
   subprocess. HEAD may be a detached hex id or a symref; the ref may be
   loose or packed (`git gc`/`git pack-refs`); `.git` itself may be a
   one-line `gitdir:` redirect file (worktrees/submodules), whose refs
   live in the commondir. Anything unresolvable — including HEAD contents
   that are not a hex id — degrades to the documented "unknown" sentinel:
   git_rev never raises and never returns a string the JSON writer can't
   emit verbatim, dirty tree or no tree at all. The schema check pins this
   (git_rev=nonempty-string in bench/dune). SLO_GIT_REV overrides. *)
let is_hex_id s =
  let n = String.length s in
  n >= 4 && n <= 64
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

let strip_prefix ~prefix s =
  let np = String.length prefix in
  if String.length s >= np && String.sub s 0 np = prefix then
    Some (String.sub s np (String.length s - np))
  else None

let git_dirs () =
  (* The directory holding HEAD, plus the one holding refs/packed-refs
     (different in a linked worktree, where `commondir` points back at the
     main repository's .git). *)
  let gitdir =
    match read_file ".git" with
    | Some s when strip_prefix ~prefix:"gitdir: " (String.trim s) <> None ->
      Option.get (strip_prefix ~prefix:"gitdir: " (String.trim s))
    | Some _ | None -> ".git"
  in
  let common =
    match read_file (Filename.concat gitdir "commondir") with
    | Some s when String.trim s <> "" ->
      let c = String.trim s in
      if Filename.is_relative c then Filename.concat gitdir c else c
    | Some _ | None -> gitdir
  in
  (gitdir, common)

let packed_ref dir ref_name =
  match read_file (Filename.concat dir "packed-refs") with
  | None -> None
  | Some s ->
    List.find_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' || line.[0] = '^' then None
        else
          match String.index_opt line ' ' with
          | Some sp
            when String.sub line (sp + 1) (String.length line - sp - 1)
                 = ref_name ->
            let id = String.sub line 0 sp in
            if is_hex_id id then Some id else None
          | Some _ | None -> None)
      (String.split_on_char '\n' s)

let git_rev () =
  match Sys.getenv_opt "SLO_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> (
    let gitdir, common = git_dirs () in
    let resolved =
      match read_file (Filename.concat gitdir "HEAD") with
      | None -> None
      | Some s -> (
        let s = String.trim s in
        match strip_prefix ~prefix:"ref: " s with
        | None -> if is_hex_id s then Some s else None
        | Some ref_name -> (
          match read_file (Filename.concat common ref_name) with
          | Some c when is_hex_id (String.trim c) -> Some (String.trim c)
          | Some _ | None -> packed_ref common ref_name))
    in
    match resolved with Some id -> id | None -> "unknown")

let artifacts = ref [] (* (section, path), reverse run order *)

let pool_json () =
  (* On a 1-core box (or --jobs 1) no parallel batch runs; the serial
     path is trivially fully busy, so utilization defaults to 1.0. *)
  let utilization =
    match Obs.gauge "pool.utilization" with Some u -> u | None -> 1.0
  in
  Json.Obj
    [
      ("jobs", Json.Int (effective_jobs ()));
      ("tasks", Json.Int (Obs.counter "pool.tasks"));
      ("batches", Json.Int (Obs.counter "pool.batches"));
      ("utilization", Json.Float utilization);
    ]

let write_json path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.pretty j))

let write_artifact ~section:name ~wall data =
  match !json_path with
  | None -> ()
  | Some manifest ->
    let path =
      Filename.concat (Filename.dirname manifest) ("BENCH_" ^ name ^ ".json")
    in
    write_json path
      (Json.Obj
         [
           ("schema", Json.Str "slo-bench/1");
           ("section", Json.Str name);
           ("git_rev", Json.Str (git_rev ()));
           ("jobs", Json.Int (effective_jobs ()));
           ("quick", Json.Bool !quick);
           ("wall_s", Json.Float wall);
           ("data", data);
           ("metrics", Obs.to_json ());
           ("pool", pool_json ());
         ]);
    artifacts := (name, path) :: !artifacts

let write_manifest () =
  match !json_path with
  | None -> ()
  | Some manifest ->
    let arts = List.rev !artifacts in
    write_json manifest
      (Json.Obj
         [
           ("schema", Json.Str "slo-bench-manifest/1");
           ("git_rev", Json.Str (git_rev ()));
           ("jobs", Json.Int (effective_jobs ()));
           ("quick", Json.Bool !quick);
           ("sections", Json.List (List.map (fun (n, _) -> Json.Str n) arts));
           ("artifacts", Json.List (List.map (fun (_, p) -> Json.Str p) arts));
         ])

(* One pool for the whole bench run, created on first use; [None] when
   running with a single job so the serial code paths stay exercised. *)
let pool_memo = ref None

let pool () =
  match !pool_memo with
  | Some p -> p
  | None ->
    let n = effective_jobs () in
    let p = if n <= 1 then None else Some (Pool.create ~domains:n) in
    (* join the workers on any exit path, including `exit 1` *)
    (match p with Some p -> at_exit (fun () -> Pool.shutdown p) | None -> ());
    pool_memo := Some p;
    p

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let bar value =
  (* One '#' per 0.5% of speedup, sign-aware, clamped for the A outlier. *)
  let n = int_of_float (Float.abs value /. 0.5) in
  let n = min n 40 in
  (if value < 0.0 then "-" else "+") ^ String.make n '#'

let layouts_memo = ref None

let layouts () =
  match !layouts_memo with
  | Some l -> l
  | None ->
    let l = Exp.analyze_all ?pool:(pool ()) () in
    layouts_memo := Some l;
    l

let print_measurements title rows =
  Printf.printf "%-8s %12s %12s %12s\n" "struct" "automatic" "hotness"
    "incremental";
  List.iter
    (fun (m : Exp.measurement) ->
      Printf.printf "%-8s %+11.2f%% %+11.2f%% %+11.2f%%   auto %s\n"
        m.Exp.m_struct m.Exp.m_automatic m.Exp.m_hotness m.Exp.m_incremental
        (bar m.Exp.m_automatic))
    rows;
  Printf.printf
    "(%s; throughput speedup over hand-tuned baseline, trimmed mean of %d \
     runs)\n%!"
    title (runs ())

let measurements_json ~cpus rows =
  Json.Obj
    [
      ("cpus", Json.Int cpus);
      ("runs", Json.Int (runs ()));
      ( "rows",
        Json.List
          (List.map
             (fun (m : Exp.measurement) ->
               Json.Obj
                 [
                   ("struct", Json.Str m.Exp.m_struct);
                   ("automatic_pct", Json.Float m.Exp.m_automatic);
                   ("hotness_pct", Json.Float m.Exp.m_hotness);
                   ("incremental_pct", Json.Float m.Exp.m_incremental);
                 ])
             rows) );
    ]

let fig8_memo = ref None

let fig8_rows () =
  match !fig8_memo with
  | Some r -> r
  | None ->
    let r = Exp.fig8 ~runs:(runs ()) ~cpus:(big_cpus ()) ?pool:(pool ()) (layouts ()) in
    fig8_memo := Some r;
    r

let run_fig8 () =
  section
    (Printf.sprintf
       "Figure 8: automatic layout vs sort-by-hotness, %d-way Superdome"
       (big_cpus ()));
  print_measurements "hierarchical machine" (fig8_rows ());
  Printf.printf
    "\nPaper shape: struct A degrades >2X under sort-by-hotness but only a\n\
     few %% under the FLG layout; B-E see small effects, with hotness\n\
     marginally ahead on some locality-dominated structs.\n%!";
  measurements_json ~cpus:(big_cpus ()) (fig8_rows ())

let run_fig9 () =
  section "Figure 9: same layouts on the 4-way bus machine";
  let rows = Exp.fig9 ~runs:(runs ()) ?pool:(pool ()) (layouts ()) in
  print_measurements "4-way bus machine" rows;
  Printf.printf
    "\nPaper shape: with cheap remote caches the false-sharing penalty\n\
     vanishes; every effect is within a few percent of baseline.\n%!";
  measurements_json ~cpus:4 rows

let run_fig10 () =
  section "Figure 10: best layout per struct (automatic vs incremental)";
  let rows = Exp.fig10 (fig8_rows ()) in
  List.iter
    (fun (r : Exp.fig10_row) ->
      Printf.printf "%-8s %+8.2f%%  (%-11s)  %s\n" r.Exp.b_struct r.Exp.b_best
        r.Exp.b_which (bar r.Exp.b_best))
    rows;
  Printf.printf
    "\nPaper shape: the incremental (important-edge subgraph) mode beats the\n\
     fully automatic layout on the huge false-sharing struct A; automatic\n\
     wins on the locality structs; best gains are a few percent.\n%!";
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (r : Exp.fig10_row) ->
               Json.Obj
                 [
                   ("struct", Json.Str r.Exp.b_struct);
                   ("best_pct", Json.Float r.Exp.b_best);
                   ("which", Json.Str r.Exp.b_which);
                 ])
             rows) );
    ]

let run_gvl () =
  section "Extension: Global Variable Layout (paper §7 future work)";
  let big, bus = Exp.gvl ~runs:(runs ()) ~cpus:(big_cpus ()) ?pool:(pool ()) () in
  Printf.printf
    "globals segment: CC-aware layout vs declaration order\n\
     %d-way machine: %+.2f%%\n4-way bus:      %+.2f%%\n" (big_cpus ()) big bus;
  Printf.printf
    "(expected: the declaration order interleaves per-quadrant counters\n\
     with read-mostly globals on one line; separating them pays on the\n\
     big machine and is neutral on the bus)\n%!";
  Json.Obj
    [
      ("cpus", Json.Int (big_cpus ()));
      ("big_pct", Json.Float big);
      ("bus_pct", Json.Float bus);
    ]

let run_cc_stability () =
  section "§4.3: CodeConcurrency stability across machine sizes";
  let rho = Exp.cc_stability () in
  Printf.printf
    "Spearman rank correlation of top-40 CC pairs, 4-way vs 16-way: %.3f\n"
    rho;
  Printf.printf
    "(paper: \"source line pairs with high concurrency values remain more\n\
     or less the same in both the 4 way and 16 way machines\")\n%!";
  Json.Obj [ ("spearman_rho", Json.Float rho) ]

let run_topology () =
  section "§5.1: machine characterization (cache-to-cache transfer cycles)";
  let topo = Topology.superdome () in
  Printf.printf "%s\n" (Topology.describe topo);
  let hops =
    [
      ("same chip", 0, 1);
      ("same bus", 0, 2);
      ("same cell", 0, 4);
      ("same crossbar", 0, 16);
      ("across crossbars", 0, 64);
    ]
  in
  let rows =
    List.map
      (fun (label, src, dst) ->
        let cycles = Topology.transfer_latency topo ~src ~dst in
        Printf.printf "  %-24s cpu%3d -> cpu%3d : %4d cycles\n" label src dst
          cycles;
        Json.Obj
          [
            ("hop", Json.Str label);
            ("src", Json.Int src);
            ("dst", Json.Int dst);
            ("cycles", Json.Int cycles);
          ])
      hops
  in
  Printf.printf "  %-24s %17s : %4d cycles\n" "memory" ""
    (Topology.memory_latency topo);
  let bus = Topology.bus () in
  Printf.printf "%s\n%!" (Topology.describe bus);
  Json.Obj
    [
      ("transfers", Json.List rows);
      ("memory_cycles", Json.Int (Topology.memory_latency topo));
    ]

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ctr_mistakes layout =
  (* Count layout mistakes on struct A: counters sharing a line with each
     other or with hot read fields. *)
  let is_ctr n = String.length n >= 5 && String.sub n 0 5 = "a_ctr" in
  let hot = [ "a_flags"; "a_state"; "a_owner"; "a_rss" ] in
  let pairs = ref 0 and on_hot = ref 0 in
  for line = 0 to Layout.lines_used layout ~line_size:128 - 1 do
    let names =
      List.map
        (fun (f : Field.t) -> f.Field.name)
        (Layout.fields_on_line layout ~line_size:128 line)
    in
    let ctrs = List.length (List.filter is_ctr names) in
    if ctrs > 1 then pairs := !pairs + (ctrs - 1);
    if ctrs > 0 && List.exists (fun h -> List.mem h names) hot then incr on_hot
  done;
  (!pairs, !on_hot)

let run_ablation_k2 () =
  section "Ablation 1: k2 (CycleLoss scale) sweep on struct A";
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let cfg = Sdet.default_config (Topology.superdome ~cpus:(big_cpus ()) ()) in
  let base = Sdet.measure ?pool:(pool ()) cfg ~runs:3 in
  Printf.printf "%-6s %18s %18s %10s\n" "k2" "ctr/ctr colocated"
    "ctr on hot line" "speedup";
  List.iter
    (fun k2 ->
      let params = { Collect.calibrated_params with Pipeline.k2 } in
      let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
      let layout = Pipeline.automatic_layout ~params flg in
      let pairs, on_hot = ctr_mistakes layout in
      let m = Sdet.measure ?pool:(pool ()) { cfg with overrides = [ layout ] } ~runs:3 in
      Printf.printf "%-6.1f %18d %18d %+9.2f%%\n%!" k2 pairs on_hot
        (Stats.speedup_percent ~baseline:base ~measured:m))
    [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Printf.printf
    "\nExpected: with k2 too small the FLG degenerates to pure locality and\n\
     writers pile onto shared lines (the sort-by-hotness failure); large k2\n\
     separates everything. The default (%.1f) keeps one residual mistake —\n\
     the paper's 'greedy is suboptimal on >100 fields' result.\n%!"
    Collect.calibrated_params.Pipeline.k2;
  Json.Null

let run_ablation_sampling () =
  section "Ablation 2: PMU sampling period vs layout quality (struct A)";
  let counts = Collect.profile () in
  let params = Collect.calibrated_params in
  Printf.printf "%-10s %10s %18s %18s\n" "period" "samples"
    "ctr/ctr colocated" "ctr on hot line";
  List.iter
    (fun period ->
      let samples = Collect.samples ~period () in
      let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
      let layout = Pipeline.automatic_layout ~params flg in
      let pairs, on_hot = ctr_mistakes layout in
      Printf.printf "%-10d %10d %18d %18d\n%!" period (List.length samples)
        pairs on_hot)
    [ 200; 400; 800; 1600; 3200 ];
  Printf.printf
    "\nExpected: sparser sampling starves CodeConcurrency of coincident\n\
     samples on short code (counter updates), so more counters get\n\
     colocated — the cost of the paper's lightweight sampling approach.\n%!";
  Json.Null

let run_ablation_clustering () =
  section "Ablation 3: clustering policies on struct A";
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
  let baseline_layout = Kernel.baseline_layout "A" in
  let cfg = Sdet.default_config (Topology.superdome ~cpus:(big_cpus ()) ()) in
  let base = Sdet.measure ?pool:(pool ()) cfg ~runs:3 in
  let raw_clusters = Cluster.run ~pack_cold:false flg ~line_size:128 in
  let variants =
    [
      ("baseline (hand-tuned)", baseline_layout);
      ("greedy FLG", Pipeline.automatic_layout ~params flg);
      ( "greedy FLG, no cold packing",
        Cluster.layout_of_clusters flg ~line_size:128 raw_clusters );
      ( "subgraph constraints on baseline",
        Pipeline.incremental_layout ~params flg ~baseline:baseline_layout );
      ("sort-by-hotness", Pipeline.hotness_layout flg);
    ]
  in
  Printf.printf "%-34s %8s %10s\n" "policy" "lines" "speedup";
  List.iter
    (fun (name, layout) ->
      let m = Sdet.measure ?pool:(pool ()) { cfg with overrides = [ layout ] } ~runs:3 in
      Printf.printf "%-34s %8d %+9.2f%%\n%!" name
        (Layout.lines_used layout ~line_size:128)
        (Stats.speedup_percent ~baseline:base ~measured:m))
    variants;
  Printf.printf
    "\nExpected: raw Figure-6 clustering explodes the footprint (every cold\n\
     field gets a line); cold packing fixes that; subgraph constraints\n\
     preserve the hand layout; hotness collapses.\n%!";
  Json.Null

let run_ablation_machines () =
  section "Ablation 4: false-sharing penalty vs machine size (struct A)";
  let ls = layouts () in
  let a = List.find (fun l -> l.Exp.struct_name = "A") ls in
  Printf.printf "%-8s %14s %14s\n" "cpus" "hotness" "automatic";
  List.iter
    (fun cpus ->
      let cfg = Sdet.default_config (Topology.superdome ~cpus ()) in
      let base = Sdet.measure ?pool:(pool ()) cfg ~runs:3 in
      let m layout =
        Stats.speedup_percent ~baseline:base
          ~measured:(Sdet.measure ?pool:(pool ()) { cfg with overrides = [ layout ] } ~runs:3)
      in
      Printf.printf "%-8d %+13.2f%% %+13.2f%%\n%!" cpus (m a.Exp.hotness)
        (m a.Exp.automatic))
    [ 2; 8; 32; 128 ];
  Printf.printf
    "\nExpected: the naive layout's penalty grows with machine size (deeper\n\
     topology, costlier invalidations); the FLG layout stays near baseline.\n%!";
  Json.Null

let run_accumulation () =
  section "§5.2: are the per-struct improvements accumulative?";
  let acc = Exp.accumulation ~runs:(runs ()) ~cpus:(big_cpus ()) ?pool:(pool ()) (layouts ()) in
  List.iter
    (fun (name, v) -> Printf.printf "best layout for %-4s alone: %+6.2f%%\n" name v)
    acc.Exp.acc_individual;
  Printf.printf "sum of individual gains:    %+6.2f%%\n" acc.Exp.acc_sum;
  Printf.printf "all best layouts combined:  %+6.2f%%\n" acc.Exp.acc_combined;
  Printf.printf
    "\n(paper: \"Note that these improvements are not accumulative. This can\n\
     be explained by the highly tuned nature of the HP-UX kernel.\")\n%!";
  Json.Obj
    [
      ( "individual_pct",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Float v)) acc.Exp.acc_individual)
      );
      ("sum_pct", Json.Float acc.Exp.acc_sum);
      ("combined_pct", Json.Float acc.Exp.acc_combined);
    ]

let run_userapp () =
  section "Prediction check: an untuned user-level application";
  let module Userapp = Slo_workload.Userapp in
  let r = Userapp.experiment ~runs:(runs ()) ~cpus:(big_cpus ()) ?pool:(pool ()) () in
  List.iter
    (fun (name, v) ->
      Printf.printf "tool layout for %-5s alone: %+7.2f%%\n" name v)
    r.Userapp.u_individual;
  Printf.printf "GVL layout for globals:      %+7.2f%%\n" r.Userapp.u_globals;
  Printf.printf "sum of individual gains:     %+7.2f%%\n" r.Userapp.u_sum;
  Printf.printf "all layouts combined:        %+7.2f%%\n" r.Userapp.u_combined;
  Printf.printf
    "\n(paper §5: for programs without years of hand tuning \"the benefit of\n\
     the tool is likely to be pronounced\", and accumulation \"is not\n\
     expected to be a problem\" — gains here should be larger than the\n\
     kernel's and roughly additive)\n%!";
  Json.Obj
    [
      ( "individual_pct",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Float v)) r.Userapp.u_individual)
      );
      ("globals_pct", Json.Float r.Userapp.u_globals);
      ("sum_pct", Json.Float r.Userapp.u_sum);
      ("combined_pct", Json.Float r.Userapp.u_combined);
    ]

let run_oracle () =
  section "§3 discussion: trace oracle vs CodeConcurrency on struct A";
  let module Trace_oracle = Slo_sim.Trace_oracle in
  let cfg =
    { (Sdet.default_config (Topology.superdome ~cpus:16 ())) with
      Sdet.reps = 60 }
  in
  let oracle = Sdet.trace_oracle cfg in
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let flg = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
  Printf.printf "%-22s %16s %18s\n" "field pair" "oracle (events)"
    "CC estimate (k2*CC)";
  let show f1 f2 =
    let o = Trace_oracle.loss oracle ~struct_name:"A" f1 f2 in
    let cc = Slo_graph.Sgraph.weight0 flg.Slo_core.Flg.loss f1 f2 in
    Printf.printf "%-22s %16d %18.0f\n" (f1 ^ " / " ^ f2)
      o.Trace_oracle.ps_false cc
  in
  (* pairs the baseline layout colocates: the oracle sees them *)
  show "a_gen" "a_ctr7";
  show "a_mask" "a_ctr7";
  (* pairs the baseline already separates: the oracle is blind, CC is not *)
  show "a_ctr0" "a_ctr1";
  show "a_ctr2" "a_ctr5";
  show "a_ctr0" "a_flags";
  Printf.printf
    "\ntotal same-instance events in trace: false %d, true %d\n"
    (Trace_oracle.total_false_sharing oracle)
    (Trace_oracle.total_true_sharing oracle);
  Printf.printf
    "\nExpected: the oracle confirms the false sharing the current layout\n\
     exhibits (the baseline's a_gen/a_mask flaw) but reports zero for the\n\
     padded counter pairs — §3's argument for why measuring false sharing\n\
     cannot drive layout, and why CodeConcurrency (which still flags those\n\
     pairs) exists.\n%!";
  Json.Null

let run_ablation_protocol () =
  section "Ablation 5: MESI vs MOESI on the SDET workload";
  let module Coherence = Slo_sim.Coherence in
  let module Machine = Slo_sim.Machine in
  let module Sim_stats = Slo_sim.Sim_stats in
  Printf.printf "%-8s %14s %14s %14s\n" "proto" "throughput" "writebacks"
    "invalidations";
  List.iter
    (fun (name, protocol) ->
      let cfg =
        { (Sdet.default_config (Topology.superdome ~cpus:(big_cpus ()) ())) with
          Sdet.protocol }
      in
      let r = Sdet.run_once cfg in
      Printf.printf "%-8s %14.1f %14d %14d\n%!" name (Machine.throughput r)
        r.Machine.stats.Sim_stats.writebacks
        r.Machine.stats.Sim_stats.invalidations)
    [ ("MESI", Coherence.Mesi); ("MOESI", Coherence.Moesi) ];
  Printf.printf
    "\nExpected: identical invalidation behaviour (layout conclusions are\n\
     protocol-independent across the MESI family, as the paper assumes);\n\
     MOESI defers dirty writebacks, cutting memory write-back traffic.\n%!";
  Json.Null

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the tool's own kernels. *)

let run_micro () =
  section "Microbenchmarks (Bechamel): analysis and simulation kernels";
  let open Bechamel in
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let flg_a = Collect.flg ~params ~counts ~samples ~struct_name:"A" () in
  let tests =
    [
      Test.make ~name:"parse+typecheck kernel.mc"
        (Staged.stage (fun () ->
             ignore
               (Typecheck.check
                  (Parser.parse_program ~file:"kernel.mc" Kernel.source))));
      Test.make ~name:"profile (PBO interpreter)"
        (Staged.stage (fun () -> ignore (Collect.profile ~iters:8 ())));
      Test.make ~name:"code concurrency (full trace)"
        (Staged.stage (fun () ->
             ignore
               (Code_concurrency.compute ~interval:params.Pipeline.cc_interval
                  samples)));
      Test.make ~name:"greedy clustering (struct A)"
        (Staged.stage (fun () -> ignore (Cluster.run flg_a ~line_size:128)));
      Test.make ~name:"FLG build (struct A)"
        (Staged.stage (fun () ->
             ignore (Collect.flg ~params ~counts ~samples ~struct_name:"A" ())));
      Test.make ~name:"sdet run (8-cpu, 6 reps)"
        (Staged.stage (fun () ->
             let cfg =
               {
                 (Sdet.default_config (Topology.superdome ~cpus:8 ())) with
                 Sdet.reps = 6;
               }
             in
             ignore (Sdet.run_once cfg)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw =
      Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            Printf.printf "%-40s %14.0f ns/run\n%!" name est;
            Json.Float est
          | Some _ | None ->
            Printf.printf "%-40s (no estimate)\n%!" name;
            Json.Null
        in
        Json.Obj [ ("name", Json.Str name); ("ns_per_run", est) ] :: acc)
      results []
  in
  Json.Obj [ ("rows", Json.List (List.concat_map benchmark tests)) ]

(* ------------------------------------------------------------------ *)
(* Differential smoke check: the parallel pipeline must be byte-identical
   to the serial one. Runs on every `dune runtest` via the runtest-par
   alias; exits non-zero on any divergence. *)

let run_smoke () =
  section "Smoke: parallel pipeline = serial pipeline (differential)";
  let domains = max 2 (effective_jobs ()) in
  let checks = ref [] in
  let check name ok =
    Printf.printf "  %-44s %s\n%!" name (if ok then "identical" else "MISMATCH");
    checks := (name, ok) :: !checks;
    ok
  in
  let results =
    Pool.with_pool ~domains (fun p ->
        let layout_str l = Format.asprintf "%a" Layout.pp l in
        let serial = Exp.analyze_all () in
        let par = Exp.analyze_all ~pool:p () in
        let layouts_ok =
          List.for_all2
            (fun (a : Exp.layouts) (b : Exp.layouts) ->
              a.Exp.struct_name = b.Exp.struct_name
              && layout_str a.Exp.automatic = layout_str b.Exp.automatic
              && layout_str a.Exp.hotness = layout_str b.Exp.hotness
              && layout_str a.Exp.incremental = layout_str b.Exp.incremental)
            serial par
        in
        let cfg =
          { (Sdet.default_config (Topology.superdome ~cpus:8 ())) with
            Sdet.reps = 6 }
        in
        let t_serial = Sdet.throughputs cfg ~runs:4 in
        let t_par = Sdet.throughputs ~pool:p cfg ~runs:4 in
        let flgs_serial =
          Pipeline.analyze_all ~params:Collect.calibrated_params
            ~program:(Kernel.program ()) ~counts:(Collect.profile ())
            ~samples:[] ~struct_names:Kernel.struct_names ()
        in
        let flgs_par =
          Pipeline.analyze_all ~params:Collect.calibrated_params ~pool:p
            ~program:(Kernel.program ()) ~counts:(Collect.profile ())
            ~samples:[] ~struct_names:Kernel.struct_names ()
        in
        let report_str (_, flg) =
          Slo_core.Report.render (Pipeline.report flg)
        in
        let ok1 =
          check
            (Printf.sprintf "analyze_all layouts (%d domains)" domains)
            layouts_ok
        in
        let ok2 = check "sdet cycle counts / throughputs" (t_serial = t_par) in
        let ok3 =
          check "FLG reports byte-identical"
            (List.map report_str flgs_serial = List.map report_str flgs_par)
        in
        [ ok1; ok2; ok3 ])
  in
  if List.exists not results then begin
    Printf.eprintf "smoke: parallel/serial divergence detected\n";
    exit 1
  end;
  Json.Obj
    [
      ("domains", Json.Int domains);
      ( "checks",
        Json.List
          (List.rev_map
             (fun (n, ok) ->
               Json.Obj [ ("name", Json.Str n); ("ok", Json.Bool ok) ])
             !checks) );
    ]

(* ------------------------------------------------------------------ *)
(* Streaming CC ingestion at scale: persist one collection run, stream it
   back through Persist.iter_samples_file -> Code_concurrency.compute_stream
   at several pool sizes, and check every streamed map against the
   in-memory compute over the same samples. Exits non-zero on divergence,
   so the runtest-obs wiring doubles as a determinism check. *)

let run_cc_scale () =
  section "cc_scale: streaming, sharded CodeConcurrency ingestion";
  let module Persist = Slo_persist.Persist in
  let samples = Collect.samples () in
  let n_samples = List.length samples in
  let interval = Collect.calibrated_params.Pipeline.cc_interval in
  let reference = Code_concurrency.compute ~interval samples in
  let path = Filename.temp_file "slo_cc_scale" ".samples" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Persist.save_samples ~path samples;
  let job_list = List.sort_uniq compare [ 1; 2; max 1 (effective_jobs ()) ] in
  Printf.printf "%d samples, interval %d, streamed from disk\n" n_samples
    interval;
  Printf.printf "%-6s %12s %14s %10s\n" "jobs" "wall (s)" "samples/s"
    "identical";
  let rows =
    List.map
      (fun jobs ->
        let stream pool =
          let t0 = Obs.now () in
          let cm =
            Code_concurrency.compute_stream ?pool ~interval (fun f ->
                Persist.iter_samples_file ~path f)
          in
          (cm, Obs.now () -. t0)
        in
        let cm, wall =
          if jobs <= 1 then stream None
          else Pool.with_pool ~domains:jobs (fun p -> stream (Some p))
        in
        let identical =
          Code_concurrency.pairs cm = Code_concurrency.pairs reference
        in
        let rate = if wall > 0.0 then float_of_int n_samples /. wall else 0.0 in
        Printf.printf "%-6d %12.4f %14.0f %10s\n%!" jobs wall rate
          (if identical then "yes" else "NO");
        if not identical then begin
          Printf.eprintf
            "cc_scale: streamed map diverges from in-memory compute at \
             jobs=%d\n"
            jobs;
          exit 1
        end;
        Json.Obj
          [
            ("jobs", Json.Int jobs);
            ("wall_s", Json.Float wall);
            ("samples_per_s", Json.Float rate);
            ("identical", Json.Bool identical);
          ])
      job_list
  in
  let peak =
    match Obs.gauge "cc.table.peak_entries" with
    | Some g -> int_of_float g
    | None -> 0
  in
  Printf.printf "peak interval-table entries: %d\n%!" peak;
  (* --- Columnar ingestion at scale: generate a store far bigger than any
     collection run, persist it in both formats, and race the two
     ingestion paths file -> in-memory store. The text baseline parses
     every line (store_of_samples_file); the binary path is
     load_samples_bin — mmap plus one validation scan — so the ratio
     isolates the format itself (everything downstream of the store is
     shared). Then the full columnar CC (compute_store) at pool sizes
     1/2/4 must reproduce the in-memory list path's map exactly — any
     divergence exits non-zero, so the runtest-col wiring doubles as the
     columnar-determinism check. *)
  let n_col = if !quick then 200_000 else 10_000_000 in
  let col_cpus = 16 and col_lines = 24 in
  let col_interval = 32_768 in
  let builder = Sample_store.builder ~capacity:n_col () in
  let state = ref 0x243F6A8885A308D3 in
  let next_itc = ref 0 in
  for _ = 1 to n_col do
    (* LCG with a monotone itc: deterministic, allocation-free, and
       time-ordered like a real PMU stream. *)
    state := (!state * 2685821657736338717) + 1442695040888963407;
    let bits = !state lsr 11 in
    next_itc := !next_itc + 1 + (bits land 7);
    Sample_store.append builder ~cpu:(bits mod col_cpus) ~itc:!next_itc
      ~line:(100 + ((bits lsr 17) mod col_lines))
  done;
  let gen_store = Sample_store.build builder in
  let bin_path = Filename.temp_file "slo_cc_scale" ".samples.bin" in
  let txt_path = Filename.temp_file "slo_cc_scale" ".samples" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ bin_path; txt_path ])
  @@ fun () ->
  Persist.save_samples_bin ~path:bin_path gen_store;
  Persist.save_store_text ~path:txt_path gen_store;
  let file_bytes p =
    let ic = open_in_bin p in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        in_channel_length ic)
  in
  let bin_bytes = file_bytes bin_path and txt_bytes = file_bytes txt_path in
  Printf.printf
    "\ncolumnar: %d generated samples, interval %d (%d cpus, %d lines)\n"
    n_col col_interval col_cpus col_lines;
  Printf.printf "  binary store %d bytes, text %d bytes\n%!" bin_bytes
    txt_bytes;
  (* Text ingestion baseline: parse every line into a columnar store. *)
  let t0 = Obs.now () in
  let tstore = Persist.store_of_samples_file ~path:txt_path in
  let text_s = Obs.now () -. t0 in
  (* Binary ingestion: mmap + the single validation scan. *)
  let t0 = Obs.now () in
  let mstore = Persist.load_samples_bin ~path:bin_path in
  let bin_s = Obs.now () -. t0 in
  (* Both paths must yield the same samples (bigarray compare is the
     custom C one, so this is a memcmp-grade check, not a boxed walk). *)
  let stores_equal =
    Sample_store.length tstore = Sample_store.length mstore
    && Sample_store.columns tstore = Sample_store.columns mstore
  in
  if not stores_equal then begin
    Printf.eprintf
      "cc_scale: text-parsed store diverges from binary-loaded store\n";
    exit 1
  end;
  let rate n s = if s > 0.0 then float_of_int n /. s else 0.0 in
  Printf.printf "  %-8s %12s %14s %14s\n" "path" "wall (s)" "samples/s"
    "bytes/s";
  Printf.printf "  %-8s %12.4f %14.0f %14.0f\n" "text" text_s
    (rate n_col text_s) (rate txt_bytes text_s);
  Printf.printf "  %-8s %12.4f %14.0f %14.0f\n%!" "binary" bin_s
    (rate n_col bin_s) (rate bin_bytes bin_s);
  let col_speedup =
    if rate n_col text_s > 0.0 then rate n_col bin_s /. rate n_col text_s
    else 0.0
  in
  Printf.printf "  binary vs text ingestion: %.2fx samples/s%s\n%!"
    col_speedup
    (if col_speedup < 3.0 then "  (below the 3x target)" else "");
  (* Columnar CC vs the in-memory list path, at pool sizes 1/2/4. *)
  let col_reference =
    Code_concurrency.compute ~interval:col_interval
      (Sample_store.to_samples mstore)
  in
  let col_ref_pairs = Code_concurrency.pairs col_reference in
  let col_rows =
    List.map
      (fun jobs ->
        let compute pool =
          let t0 = Obs.now () in
          let cm =
            Code_concurrency.compute_store ?pool ~interval:col_interval mstore
          in
          (cm, Obs.now () -. t0)
        in
        let cm, wall =
          if jobs <= 1 then compute None
          else Pool.with_pool ~domains:jobs (fun p -> compute (Some p))
        in
        let identical = Code_concurrency.pairs cm = col_ref_pairs in
        Printf.printf "  pool %-3d %12.4f %14.0f %14.0f   %s\n%!" jobs wall
          (rate n_col wall) (rate bin_bytes wall)
          (if identical then "identical" else "MISMATCH");
        if not identical then begin
          Printf.eprintf
            "cc_scale: columnar CC diverges from the list path at pool=%d\n"
            jobs;
          exit 1
        end;
        Json.Obj
          [
            ("jobs", Json.Int jobs);
            ("wall_s", Json.Float wall);
            ("samples_per_s", Json.Float (rate n_col wall));
            ("bytes_per_s", Json.Float (rate bin_bytes wall));
            ("identical", Json.Bool identical);
          ])
      [ 1; 2; 4 ]
  in
  (* --- Binner ingestion hot path: the flat open-addressing histogram
     (Flat_tab) vs the (int, int ref) Hashtbl-per-interval feeder it
     replaced, inlined here as the baseline. Same store, same packed
     keys; the race isolates the table, and the resulting histograms
     must be identical — any divergence exits non-zero. *)
  let module Flat_tab = Slo_util.Flat_tab in
  let t0 = Obs.now () in
  let flat_binner = Sample.binner ~interval:col_interval in
  Sample_store.iter mstore (fun s -> Sample.feed flat_binner s);
  let flat_s = Obs.now () -. t0 in
  let t0 = Obs.now () in
  let boxed : (int, (int, int ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  for i = 0 to Sample_store.length mstore - 1 do
    let idx = Sample.floor_div (Sample_store.itc mstore i) col_interval in
    let tbl =
      match Hashtbl.find_opt boxed idx with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 256 in
        Hashtbl.add boxed idx t;
        t
    in
    let key =
      (Sample_store.cpu mstore i lsl 31) lor Sample_store.line mstore i
    in
    match Hashtbl.find_opt tbl key with
    | Some r -> incr r
    | None -> Hashtbl.add tbl key (ref 1)
  done;
  let boxed_s = Obs.now () -. t0 in
  let flat_rows =
    List.concat_map
      (fun (idx, tbl) ->
        List.concat_map
          (fun (line, fs) ->
            List.map (fun (cpu, n) -> (idx, (cpu lsl 31) lor line, n)) fs)
          (Sample.line_freqs tbl))
      (Sample.binned_idx flat_binner)
    |> List.sort compare
  in
  let boxed_rows =
    Hashtbl.fold
      (fun idx tbl acc ->
        Hashtbl.fold (fun key r acc -> (idx, key, !r) :: acc) tbl acc)
      boxed []
    |> List.sort compare
  in
  let binner_identical = flat_rows = boxed_rows in
  let binner_speedup = if flat_s > 0.0 then boxed_s /. flat_s else 0.0 in
  Printf.printf "\nbinner ingestion (store -> interval histograms):\n";
  Printf.printf "  %-8s %12s %14s\n" "table" "wall (s)" "samples/s";
  Printf.printf "  %-8s %12.4f %14.0f\n" "hashtbl" boxed_s
    (rate n_col boxed_s);
  Printf.printf "  %-8s %12.4f %14.0f\n" "flat" flat_s (rate n_col flat_s);
  Printf.printf "  flat vs hashtbl: %.2fx samples/s, histograms %s\n%!"
    binner_speedup
    (if binner_identical then "identical" else "MISMATCH");
  if not binner_identical then begin
    Printf.eprintf
      "cc_scale: flat binner diverges from the Hashtbl reference feeder\n";
    exit 1
  end;
  Json.Obj
    [
      ("n_samples", Json.Int n_samples);
      ("interval", Json.Int interval);
      ("peak_table_entries", Json.Int peak);
      ("rows", Json.List rows);
      ( "binner",
        Json.Obj
          [
            ("n_samples", Json.Int n_col);
            ("hashtbl_samples_per_s", Json.Float (rate n_col boxed_s));
            ("flat_samples_per_s", Json.Float (rate n_col flat_s));
            ("flat_vs_hashtbl_x", Json.Float binner_speedup);
            ("identical", Json.Bool binner_identical);
          ] );
      ( "columnar",
        Json.Obj
          [
            ("n_samples", Json.Int n_col);
            ("interval", Json.Int col_interval);
            ("bin_bytes", Json.Int bin_bytes);
            ("text_bytes", Json.Int txt_bytes);
            ("stores_equal", Json.Bool stores_equal);
            ( "text",
              Json.Obj
                [
                  ("wall_s", Json.Float text_s);
                  ("samples_per_s", Json.Float (rate n_col text_s));
                  ("bytes_per_s", Json.Float (rate txt_bytes text_s));
                ] );
            ( "binary",
              Json.Obj
                [
                  ("wall_s", Json.Float bin_s);
                  ("samples_per_s", Json.Float (rate n_col bin_s));
                  ("bytes_per_s", Json.Float (rate bin_bytes bin_s));
                ] );
            ("binary_vs_text_x", Json.Float col_speedup);
            ("rows", Json.List col_rows);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Metaheuristic layout search (lib/search) over the kernel corpus: run
   the full portfolio per struct, require best >= greedy on the shared
   objective (exit non-zero otherwise — the runtest-obs wiring doubles as
   the optimizer-soundness check), then validate any strict objective win
   on the simulator by re-running SDET with the two layouts. *)

let run_layout_search () =
  section "layout_search: metaheuristic portfolio vs greedy clustering";
  let module Optimizer = Slo_search.Optimizer in
  let counts = Collect.profile () in
  let samples = Collect.samples () in
  let params = Collect.calibrated_params in
  let restarts = if !quick then 6 else 12 in
  let seed = 0 in
  Printf.printf
    "portfolio = greedy + swap + swap@decl + %d annealing restarts (seed %d)\n"
    restarts seed;
  Printf.printf "%-8s %12s %12s %10s  %s\n" "struct" "greedy" "best" "delta"
    "winner";
  let per_struct =
    List.map
      (fun name ->
        let flg = Collect.flg ~params ~counts ~samples ~struct_name:name () in
        let p =
          Pipeline.search ~params ?pool:(pool ()) ~seed ~restarts
            ~selector:Optimizer.Portfolio flg
        in
        let g = p.Optimizer.greedy.Optimizer.score in
        let b = p.Optimizer.best.Optimizer.score in
        if b < g then begin
          Printf.eprintf
            "layout_search: best (%g) scores below greedy (%g) on struct %s\n"
            b g name;
          exit 1
        end;
        Printf.printf "%-8s %12.1f %12.1f %10.1f  %s\n%!" name g b (b -. g)
          p.Optimizer.best.Optimizer.label;
        (name, p))
      Kernel.struct_names
  in
  (* The greedy-trap workload (Slo_workload.Trap): a struct engineered so
     the Figure-7 clusterer is provably suboptimal on the shared
     objective. Here the search must win STRICTLY, and the win must show
     up as fewer simulated cycles. *)
  let module Trap = Slo_workload.Trap in
  let trap_flg = Trap.flg () in
  let trap =
    Pipeline.search ?pool:(pool ()) ~seed ~restarts
      ~selector:Optimizer.Portfolio trap_flg
  in
  let tg = trap.Optimizer.greedy.Optimizer.score in
  let tb = trap.Optimizer.best.Optimizer.score in
  Printf.printf "%-8s %12.1f %12.1f %10.1f  %s\n%!" "trap" tg tb (tb -. tg)
    trap.Optimizer.best.Optimizer.label;
  if tb <= tg then begin
    Printf.eprintf
      "layout_search: search failed to strictly beat greedy on the trap \
       workload (greedy %g, best %g)\n"
      tg tb;
    exit 1
  end;
  let per_struct = per_struct @ [ ("trap", trap) ] in
  (* Simulator validation: structs that improved on the objective re-run
     their workload with the greedy layout vs the best-found layout; the
     trap uses its own driver, kernel structs use SDET. *)
  let module Machine = Slo_sim.Machine in
  let improved =
    List.filter
      (fun ((_, p) : string * Optimizer.portfolio) ->
        p.Optimizer.best.Optimizer.score
        > p.Optimizer.greedy.Optimizer.score +. 1e-9)
      per_struct
  in
  let cfg =
    Sdet.default_config
      (Topology.superdome ~cpus:(if !quick then 16 else 32) ())
  in
  let sim_seeds = [ 1; 2; 3 ] in
  let sdet_cycles layout =
    List.fold_left
      (fun acc seed ->
        let r = Sdet.run_once { cfg with Sdet.overrides = [ layout ]; seed } in
        acc + r.Machine.makespan)
      0 sim_seeds
  in
  let sim_rows =
    List.map
      (fun ((name, p) : string * Optimizer.portfolio) ->
        let cycles =
          if name = "trap" then fun l -> Trap.measure_makespan l
          else sdet_cycles
        in
        let cg = cycles p.Optimizer.greedy.Optimizer.layout in
        let cb = cycles p.Optimizer.best.Optimizer.layout in
        Printf.printf
          "sim %-6s greedy %9d cycles | %-10s %9d cycles  -> %s\n%!" name cg
          p.Optimizer.best.Optimizer.label cb
          (if cb < cg then "confirmed (fewer cycles)" else "not confirmed");
        (name, p.Optimizer.best.Optimizer.label, cg, cb))
      improved
  in
  let confirmed = List.exists (fun (_, _, cg, cb) -> cb < cg) sim_rows in
  if not confirmed then begin
    Printf.eprintf
      "layout_search: no objective win was confirmed by the simulator\n";
    exit 1
  end;
  Printf.printf "simulator confirmation: yes\n%!";
  Json.Obj
    [
      ("restarts", Json.Int restarts);
      ("seed", Json.Int seed);
      ( "structs",
        Json.List
          (List.map
             (fun ((name, p) : string * Optimizer.portfolio) ->
               Json.Obj
                 [
                   ("struct", Json.Str name);
                   ( "greedy_score",
                     Json.Float p.Optimizer.greedy.Optimizer.score );
                   ("best_score", Json.Float p.Optimizer.best.Optimizer.score);
                   ("winner", Json.Str p.Optimizer.best.Optimizer.label);
                   ( "scoreboard",
                     Json.List
                       (List.map
                          (fun (r : Optimizer.result) ->
                            Json.Obj
                              [
                                ("candidate", Json.Str r.Optimizer.label);
                                ("score", Json.Float r.Optimizer.score);
                                ("moves", Json.Int r.Optimizer.moves);
                              ])
                          p.Optimizer.scoreboard) );
                 ])
             per_struct) );
      ( "sim",
        Json.List
          (List.map
             (fun (name, label, cg, cb) ->
               Json.Obj
                 [
                   ("struct", Json.Str name);
                   ("winner", Json.Str label);
                   ("greedy_cycles", Json.Int cg);
                   ("best_cycles", Json.Int cb);
                   ("improved", Json.Bool (cb < cg));
                 ])
             sim_rows) );
      ("sim_confirmed", Json.Bool confirmed);
    ]

(* ------------------------------------------------------------------ *)
(* Code-layout subsystem (lib/codelayout): the same search engine over a
   second substrate — basic blocks with CFG-edge affinities, bins are
   I-cache lines. Three gates in one section: (1) the portfolio's best
   never scores below greedy or declaration order on the shared
   objective, (2) the searched block order STRICTLY reduces simulated
   I-cache misses on the built-in trap workload, and (3) the flat
   kernel's instruction-fetch side stays byte-identical to the boxed
   reference under both layouts. Exit non-zero on any failure — the
   runtest-code wiring doubles as the subsystem's soundness check. *)

let run_code_layout () =
  section "code_layout: block-affinity search vs declaration order";
  let module Codelayout = Slo_codelayout.Codelayout in
  let module Ctrap = Slo_workload.Ctrap in
  let module Machine = Slo_sim.Machine in
  let module Coherence = Slo_sim.Coherence in
  let module Sim_stats = Slo_sim.Sim_stats in
  let module Sgraph = Slo_graph.Sgraph in
  let capacity = Ctrap.icache.Coherence.i_line_size in
  let prob =
    Codelayout.of_program ~capacity (Ctrap.program ()) (Ctrap.profile ())
  in
  let blocks = Codelayout.blocks prob in
  let graph = Codelayout.graph prob in
  let active =
    List.length
      (List.filter
         (fun b -> Sgraph.degree graph (Codelayout.Block.name b) > 0)
         blocks)
  in
  let restarts = if !quick then 4 else 8 in
  let seed = 0 in
  Printf.printf
    "%d blocks (%d active), %d affinity edges, %dB bins; portfolio = greedy \
     + swap + %d annealing restarts (seed %d)\n"
    (List.length blocks) active (Sgraph.num_edges graph) capacity restarts
    seed;
  let pf =
    Codelayout.search ?pool:(pool ()) ~seed ~restarts prob
      Slo_search.Engine.Portfolio
  in
  Printf.printf "%-12s %12s %8s\n" "candidate" "score" "moves";
  List.iter
    (fun (r : Codelayout.result) ->
      Printf.printf "%-12s %12.2f %8d\n%!" r.Codelayout.label
        r.Codelayout.score r.Codelayout.moves)
    pf.Codelayout.scoreboard;
  let decl_score = Codelayout.score prob (Codelayout.decl_bins prob) in
  let g = pf.Codelayout.greedy.Codelayout.score in
  let b = pf.Codelayout.best.Codelayout.score in
  Printf.printf "best: %s (%.2f vs greedy %.2f, declaration %.2f)\n%!"
    pf.Codelayout.best.Codelayout.label b g decl_score;
  if b < g || b < decl_score then begin
    Printf.eprintf
      "code_layout: best (%g) scores below a baseline (greedy %g, \
       declaration %g)\n"
      b g decl_score;
    exit 1
  end;
  (* Simulator confirmation, each layout run on both backends: the flat
     kernel's fetch path is on the line here, not just the objective. *)
  let cpus = 4 in
  let run backend code_layout = Ctrap.run_sim ~backend ~cpus ?code_layout () in
  let best_order = pf.Codelayout.best.Codelayout.order in
  let base_flat = run Coherence.Flat None in
  let base_ref = run Coherence.Reference None in
  let opt_flat = run Coherence.Flat (Some best_order) in
  let opt_ref = run Coherence.Reference (Some best_order) in
  let backend_identical = base_flat = base_ref && opt_flat = opt_ref in
  if not backend_identical then begin
    Printf.eprintf
      "code_layout: flat kernel diverges from reference on the fetch path\n";
    exit 1
  end;
  Printf.printf "sim (%d cpus, %d-line x %dB I-cache), flat = reference: %s\n"
    cpus Ctrap.icache.Coherence.i_lines Ctrap.icache.Coherence.i_line_size
    (if backend_identical then "yes" else "NO");
  let row label (r : Machine.result) =
    Printf.printf
      "  %-12s imisses %8d / %8d fetches (%5.1f%%), istall %9d, makespan %9d\n%!"
      label r.Machine.stats.Sim_stats.imisses
      r.Machine.stats.Sim_stats.ifetches
      (100.0 *. Sim_stats.imiss_rate r.Machine.stats)
      r.Machine.stats.Sim_stats.istall_cycles r.Machine.makespan
  in
  row "declaration" base_flat;
  row pf.Codelayout.best.Codelayout.label opt_flat;
  let confirmed =
    opt_flat.Machine.stats.Sim_stats.imisses
    < base_flat.Machine.stats.Sim_stats.imisses
  in
  if not confirmed then begin
    Printf.eprintf
      "code_layout: searched layout did not strictly reduce simulated \
       I-cache misses (declaration %d, searched %d)\n"
      base_flat.Machine.stats.Sim_stats.imisses
      opt_flat.Machine.stats.Sim_stats.imisses;
    exit 1
  end;
  Printf.printf "simulator confirmation: yes\n%!";
  let sim_row (r : Machine.result) =
    Json.Obj
      [
        ("imisses", Json.Int r.Machine.stats.Sim_stats.imisses);
        ("ifetches", Json.Int r.Machine.stats.Sim_stats.ifetches);
        ("imiss_rate", Json.Float (Sim_stats.imiss_rate r.Machine.stats));
        ("istall_cycles", Json.Int r.Machine.stats.Sim_stats.istall_cycles);
        ("makespan", Json.Int r.Machine.makespan);
      ]
  in
  Json.Obj
    [
      ("capacity", Json.Int capacity);
      ("blocks", Json.Int (List.length blocks));
      ("active", Json.Int active);
      ("edges", Json.Int (Sgraph.num_edges graph));
      ("restarts", Json.Int restarts);
      ("seed", Json.Int seed);
      ("decl_score", Json.Float decl_score);
      ("greedy_score", Json.Float g);
      ("best_score", Json.Float b);
      ("winner", Json.Str pf.Codelayout.best.Codelayout.label);
      ( "scoreboard",
        Json.List
          (List.map
             (fun (r : Codelayout.result) ->
               Json.Obj
                 [
                   ("candidate", Json.Str r.Codelayout.label);
                   ("score", Json.Float r.Codelayout.score);
                   ("moves", Json.Int r.Codelayout.moves);
                 ])
             pf.Codelayout.scoreboard) );
      ( "sim",
        Json.Obj
          [
            ("cpus", Json.Int cpus);
            ("declaration", sim_row base_flat);
            ("best", sim_row opt_flat);
          ] );
      ("backend_identical", Json.Bool backend_identical);
      ("sim_confirmed", Json.Bool confirmed);
    ]

(* ------------------------------------------------------------------ *)
(* Flat memory-system kernel vs the boxed reference implementation. Three
   checks in one section: (1) result identity — full Machine.result records
   (makespan, per-CPU cycles, stats, samples, trace events) must be equal
   across protocols and topologies, including a >62-CPU machine that
   exercises the multi-word sharer masks; (2) parallel fan-out over
   Exec.Pool stays byte-identical for pool sizes 1/2/4; (3) throughput of
   both backends on the SDET workload (accesses/s, misses/s by class).
   Exits non-zero on any mismatch, so the runtest-obs wiring doubles as a
   kernel-vs-oracle differential check. *)

let run_sim_scale () =
  section "sim_scale: flat memory-system kernel vs boxed reference";
  let module Machine = Slo_sim.Machine in
  let module Coherence = Slo_sim.Coherence in
  let module Sim_stats = Slo_sim.Sim_stats in
  let base ~cpus = Sdet.default_config (Topology.superdome ~cpus ()) in
  (* 1. Identity across protocols / topologies. Superdome-64 exceeds the
     62-bit mask word, so the kernel's multi-word fallback is on the line
     here, not just in the unit tests. *)
  let identity_cases =
    [
      ( "superdome16 MESI sampled+traced",
        { (base ~cpus:16) with Sdet.reps = 8; sample_period = Some 500;
          trace = true } );
      ( "superdome64 MOESI multi-word masks",
        { (base ~cpus:64) with Sdet.reps = 4;
          protocol = Slo_sim.Coherence.Moesi } );
      ( "bus4 MESI small cache (evictions)",
        { (Sdet.default_config (Topology.bus ~cpus:4 ())) with
          Sdet.reps = 10; cache_lines = 64 } );
    ]
  in
  Printf.printf "%-36s %12s %10s %10s\n" "identity case" "makespan" "accesses"
    "identical";
  let identity_rows =
    List.map
      (fun (name, cfg) ->
        let r_ref = Sdet.run_once { cfg with Sdet.backend = Coherence.Reference } in
        let r_flat = Sdet.run_once { cfg with Sdet.backend = Coherence.Flat } in
        let identical = r_flat = r_ref in
        let accesses =
          r_flat.Machine.stats.Sim_stats.loads
          + r_flat.Machine.stats.Sim_stats.stores
        in
        Printf.printf "%-36s %12d %10d %10s\n%!" name r_flat.Machine.makespan
          accesses
          (if identical then "yes" else "NO");
        if not identical then begin
          Printf.eprintf
            "sim_scale: kernel diverges from reference on %s\n" name;
          exit 1
        end;
        Json.Obj
          [
            ("case", Json.Str name);
            ("makespan", Json.Int r_flat.Machine.makespan);
            ("accesses", Json.Int accesses);
            ("identical", Json.Bool identical);
          ])
      identity_cases
  in
  (* 2. Parallel multi-config fan-out over Exec.Pool: byte-identical
     results for pool sizes 1, 2 and 4. *)
  let pool_cfg = { (base ~cpus:8) with Sdet.reps = 6 } in
  let pool_seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let run_seed seed = Sdet.run_once { pool_cfg with Sdet.seed } in
  let serial = List.map run_seed pool_seeds in
  let pool_sizes = [ 1; 2; 4 ] in
  let pool_ok =
    List.for_all
      (fun n ->
        let rs =
          Pool.with_pool ~domains:n (fun p -> Pool.map p run_seed pool_seeds)
        in
        let ok = rs = serial in
        Printf.printf "pool fan-out, %d domain%s: %s\n%!" n
          (if n = 1 then "" else "s")
          (if ok then "identical" else "MISMATCH");
        ok)
      pool_sizes
  in
  if not pool_ok then begin
    Printf.eprintf "sim_scale: pooled runs diverge from serial runs\n";
    exit 1
  end;
  (* 3. Memory-system throughput: record SDET's access trace once, then
     replay it through each backend's Coherence directly. This isolates
     what the kernel rewrote — the interpreter around it is shared by both
     backends and would only dilute the comparison. End-to-end simulation
     wall time is reported alongside as context. *)
  let cpus = if !quick then 16 else 32 in
  let reps = if !quick then 12 else 30 in
  let runs = if !quick then 4 else 8 in
  let replays = if !quick then 10 else 20 in
  let cfg = { (base ~cpus) with Sdet.reps } in
  let trace =
    Array.of_list
      (Sdet.run_once { cfg with Sdet.trace = true }).Machine.trace
  in
  let n_trace = Array.length trace in
  (* Each wall number is the best of three timed attempts: the replays are
     deterministic, so the attempts differ only by machine noise and the
     min is the honest throughput — the ratio gates below must not flake
     on a descheduled attempt. *)
  let replay ?hierarchy backend =
    let attempt () =
      let coh =
        Coherence.create cfg.Sdet.topology ~line_size:Kernel.line_size
          ~cache_capacity:cfg.Sdet.cache_lines ~protocol:cfg.Sdet.protocol
          ?hierarchy ~backend ()
      in
      let t0 = Obs.now () in
      for _rep = 1 to replays do
        Array.iter
          (fun (ev : Machine.trace_event) ->
            ignore
              (Coherence.access coh ~cpu:ev.Machine.t_cpu
                 ~addr:ev.Machine.t_addr ~size:ev.Machine.t_size
                 ~is_write:ev.Machine.t_is_write))
          trace
      done;
      (Coherence.total_stats coh, Obs.now () -. t0)
    in
    let stats, w1 = attempt () in
    let _, w2 = attempt () in
    let _, w3 = attempt () in
    (stats, min w1 (min w2 w3))
  in
  let ref_totals, ref_wall = replay Coherence.Reference in
  let flat_totals, flat_wall = replay Coherence.Flat in
  if flat_totals <> ref_totals then begin
    Printf.eprintf "sim_scale: replay statistics diverge between backends\n";
    exit 1
  end;
  (* End-to-end simulation wall time (interpreter + memory system). *)
  let sim_wall backend =
    let t0 = Obs.now () in
    List.iter
      (fun seed -> ignore (Sdet.run_once { cfg with Sdet.backend; seed }))
      (List.init runs (fun i -> cfg.Sdet.seed + i));
    Obs.now () -. t0
  in
  let ref_sim_wall = sim_wall Coherence.Reference in
  let flat_sim_wall = sim_wall Coherence.Flat in
  let accesses st = st.Sim_stats.loads + st.Sim_stats.stores in
  let per_s wall n = if wall > 0.0 then float_of_int n /. wall else 0.0 in
  let backend_json st wall =
    Json.Obj
      [
        ("wall_s", Json.Float wall);
        ("accesses_per_s", Json.Float (per_s wall (accesses st)));
        ( "misses_per_s",
          Json.Obj
            [
              ("cold", Json.Float (per_s wall st.Sim_stats.cold_misses));
              ("capacity", Json.Float (per_s wall st.Sim_stats.capacity_misses));
              ( "true_sharing",
                Json.Float (per_s wall st.Sim_stats.true_sharing_misses) );
              ( "false_sharing",
                Json.Float (per_s wall st.Sim_stats.false_sharing_misses) );
            ] );
      ]
  in
  let flat_rate = per_s flat_wall (accesses flat_totals) in
  let ref_rate = per_s ref_wall (accesses ref_totals) in
  let speedup = if ref_rate > 0.0 then flat_rate /. ref_rate else 0.0 in
  let sim_speedup =
    if flat_sim_wall > 0.0 then ref_sim_wall /. flat_sim_wall else 0.0
  in
  Printf.printf
    "trace replay: %d SDET accesses x %d replays (%d CPUs, %d reps)\n" n_trace
    replays cpus reps;
  Printf.printf "%-10s %12s %14s %14s\n" "backend" "wall (s)" "accesses/s"
    "misses/s";
  let print_row name st wall =
    let misses =
      st.Sim_stats.cold_misses + st.Sim_stats.capacity_misses
      + st.Sim_stats.true_sharing_misses + st.Sim_stats.false_sharing_misses
    in
    Printf.printf "%-10s %12.4f %14.0f %14.0f\n%!" name wall
      (per_s wall (accesses st))
      (per_s wall misses)
  in
  print_row "reference" ref_totals ref_wall;
  print_row "kernel" flat_totals flat_wall;
  Printf.printf "memory-system speedup: %.2fx accesses/s%s\n" speedup
    (if speedup < 2.0 then "  (below the 2x target)" else "");
  Printf.printf
    "end-to-end simulation: reference %.4fs, kernel %.4fs (%.2fx) over %d runs\n%!"
    ref_sim_wall flat_sim_wall sim_speedup runs;
  if Obs.counter "sim.kernel.runs" = 0 then begin
    Printf.eprintf "sim_scale: sim.kernel.* obs counters never moved\n";
    exit 1
  end;
  (* 4. Multi-level hierarchy: the same trace replayed with private L1s
     and per-cell victim LLCs in front of the coherent caches. Three
     gates: the backends stay identical, the flat kernel keeps a >= 3x
     throughput lead over the boxed reference, and the hierarchy
     machinery costs the flat kernel at most 30% of its single-level
     throughput. *)
  let module Ntrap = Slo_workload.Ntrap in
  let hier_geometry = Ntrap.hierarchy in
  let hier_ref_totals, hier_ref_wall =
    replay ~hierarchy:hier_geometry Coherence.Reference
  in
  let hier_flat_totals, hier_flat_wall =
    replay ~hierarchy:hier_geometry Coherence.Flat
  in
  if hier_flat_totals <> hier_ref_totals then begin
    Printf.eprintf
      "sim_scale: multi-level replay statistics diverge between backends\n";
    exit 1
  end;
  let hier_flat_rate = per_s hier_flat_wall (accesses hier_flat_totals) in
  let hier_ref_rate = per_s hier_ref_wall (accesses hier_ref_totals) in
  let hier_speedup =
    if hier_ref_rate > 0.0 then hier_flat_rate /. hier_ref_rate else 0.0
  in
  let single_level_ratio =
    if flat_rate > 0.0 then hier_flat_rate /. flat_rate else 0.0
  in
  Printf.printf
    "multi-level replay (L1 %d lines, LLC %d lines per cell):\n"
    hier_geometry.Coherence.h_l1_lines hier_geometry.Coherence.h_llc_lines;
  print_row "reference" hier_ref_totals hier_ref_wall;
  print_row "kernel" hier_flat_totals hier_flat_wall;
  Printf.printf
    "multi-level speedup: %.2fx accesses/s (gate: >= 3x); %.2fx of \
     single-level kernel throughput (gate: >= 0.7x)\n%!"
    hier_speedup single_level_ratio;
  if hier_speedup < 3.0 then begin
    Printf.eprintf
      "sim_scale: multi-level kernel throughput %.2fx reference — below \
       the 3x gate\n"
      hier_speedup;
    exit 1
  end;
  if single_level_ratio < 0.7 then begin
    Printf.eprintf
      "sim_scale: hierarchy costs the kernel %.0f%% of its single-level \
       throughput — above the 30%% regression gate\n"
      ((1.0 -. single_level_ratio) *. 100.0);
    exit 1
  end;
  (* 5. The NUMA trap demo: the hierarchy-aware objective must strictly
     beat the distance-blind one in simulated cycles on the 128-CPU
     Superdome, and must not lose on the 4-CPU bus (where the two
     objectives pick the same layout and the makespans are a wash). *)
  let demo topo name require_strict =
    let mk_hier = Ntrap.measure_makespan ~topo (Ntrap.layout_hier topo) in
    let mk_flat = Ntrap.measure_makespan ~topo (Ntrap.layout_flat topo) in
    let win_pct =
      if mk_flat > 0 then
        100.0 *. (1.0 -. (float_of_int mk_hier /. float_of_int mk_flat))
      else 0.0
    in
    Printf.printf
      "ntrap %-14s hier-aware %8d cycles, flat %8d cycles (%+.2f%%)\n%!" name
      mk_hier mk_flat win_pct;
    if require_strict && mk_hier >= mk_flat then begin
      Printf.eprintf
        "sim_scale: hierarchy-aware layout does not strictly beat the flat \
         one on %s (%d vs %d cycles)\n"
        name mk_hier mk_flat;
      exit 1
    end;
    if (not require_strict) && mk_hier > mk_flat then begin
      Printf.eprintf
        "sim_scale: hierarchy-aware layout loses to the flat one on %s \
         (%d vs %d cycles)\n"
        name mk_hier mk_flat;
      exit 1
    end;
    ( name,
      Json.Obj
        [
          ("hier_cycles", Json.Int mk_hier);
          ("flat_cycles", Json.Int mk_flat);
          ("win_pct", Json.Float win_pct);
          ("strict_win_required", Json.Bool require_strict);
        ] )
  in
  let demo_superdome = demo (Topology.superdome ~cpus:128 ()) "superdome128" true in
  let demo_bus = demo (Topology.bus ~cpus:4 ()) "bus4" false in
  if Obs.counter "sim.llc.runs" = 0 then begin
    Printf.eprintf "sim_scale: sim.llc.* obs counters never moved\n";
    exit 1
  end;
  Json.Obj
    [
      ("cpus", Json.Int cpus);
      ("reps", Json.Int reps);
      ("runs", Json.Int runs);
      ("trace_accesses", Json.Int n_trace);
      ("replays", Json.Int replays);
      ("identity", Json.List identity_rows);
      ("identical", Json.Bool true);
      ( "pool",
        Json.Obj
          [
            ("sizes", Json.List (List.map (fun n -> Json.Int n) pool_sizes));
            ("identical", Json.Bool pool_ok);
          ] );
      ("kernel", backend_json flat_totals flat_wall);
      ("reference", backend_json ref_totals ref_wall);
      ("speedup_x", Json.Float speedup);
      ( "sim_end_to_end",
        Json.Obj
          [
            ("reference_wall_s", Json.Float ref_sim_wall);
            ("kernel_wall_s", Json.Float flat_sim_wall);
            ("speedup_x", Json.Float sim_speedup);
          ] );
      ("kernel_runs_counter", Json.Int (Obs.counter "sim.kernel.runs"));
      ( "hierarchy",
        Json.Obj
          [
            ("l1_lines", Json.Int hier_geometry.Coherence.h_l1_lines);
            ("llc_lines", Json.Int hier_geometry.Coherence.h_llc_lines);
            ("identical", Json.Bool true);
            ( "hits",
              Json.Obj
                [
                  ("l1", Json.Int hier_flat_totals.Sim_stats.l1_hits);
                  ("l2", Json.Int hier_flat_totals.Sim_stats.l2_hits);
                  ( "llc_local",
                    Json.Int hier_flat_totals.Sim_stats.llc_local_hits );
                  ( "llc_remote",
                    Json.Int hier_flat_totals.Sim_stats.llc_remote_hits );
                ] );
            ("kernel", backend_json hier_flat_totals hier_flat_wall);
            ("reference", backend_json hier_ref_totals hier_ref_wall);
            ("speedup_x", Json.Float hier_speedup);
            ("single_level_ratio", Json.Float single_level_ratio);
            ( "demo",
              Json.Obj [ demo_superdome; demo_bus ] );
            ("llc_runs_counter", Json.Int (Obs.counter "sim.llc.runs"));
          ] );
    ]

let run_model_check () =
  section "model_check: exhaustive small-config coherence verification";
  let module Mc = Slo_sim.Modelcheck in
  Printf.printf
    "breadth-first over every interleaving; both backends + trace oracle \
     checked on every edge\n";
  Printf.printf "%-24s %8s %8s %8s %6s %9s %8s %9s\n" "config" "states" "pinned"
    "edges" "depth" "frontier" "oracle" "wall (s)";
  let drift = ref false in
  let rows =
    List.map
      (fun (cfg, pin) ->
        let t0 = Obs.now () in
        let r =
          try Mc.run cfg
          with Mc.Violation { vmsg; vtrace } ->
            Printf.eprintf
              "model_check: %s violated an invariant: %s (witness: %d steps)\n"
              (Mc.config_name cfg) vmsg (List.length vtrace);
            exit 1
        in
        let wall = Obs.now () -. t0 in
        let ok = r.Mc.r_states = pin in
        if not ok then drift := true;
        Printf.printf "%-24s %8d %8d %8d %6d %9d %8d %9.3f%s\n%!"
          (Mc.config_name cfg) r.Mc.r_states pin r.Mc.r_transitions
          r.Mc.r_max_depth r.Mc.r_max_frontier r.Mc.r_oracle_traces wall
          (if ok then "" else "  DRIFT");
        Json.Obj
          [
            ("config", Json.Str (Mc.config_name cfg));
            ("states", Json.Int r.Mc.r_states);
            ("pinned", Json.Int pin);
            ("transitions", Json.Int r.Mc.r_transitions);
            ("max_depth", Json.Int r.Mc.r_max_depth);
            ("max_frontier", Json.Int r.Mc.r_max_frontier);
            ("oracle_traces", Json.Int r.Mc.r_oracle_traces);
            ("ok", Json.Bool ok);
          ])
      Mc.standard_suite
  in
  if !drift then begin
    Printf.eprintf
      "model_check: reachable-state count drifted from its pin — the \
       protocol semantics changed\n";
    exit 1
  end;
  (* The mutation net must stay live: a deliberately broken protocol table
     has to be caught, with a minimized witness. *)
  let mutations =
    [
      ("read_keeps_modified", Mc.Read_keeps_modified);
      ("skip_last_invalidation", Mc.Skip_last_invalidation);
    ]
  in
  let mutation_rows =
    List.map
      (fun (name, m) ->
        match Mc.run ~mutate:m (Mc.config ()) with
        | _ ->
          Printf.eprintf
            "model_check: mutation %s explored without a violation — the \
             invariant net is dead\n"
            name;
          exit 1
        | exception Mc.Violation { vmsg; vtrace } ->
          Printf.printf "mutation %-24s caught: %s (%d-step witness)\n%!" name
            vmsg (List.length vtrace);
          Json.Obj
            [
              ("mutation", Json.Str name);
              ("caught", Json.Bool true);
              ("witness_steps", Json.Int (List.length vtrace));
              ("message", Json.Str vmsg);
            ])
      mutations
  in
  Printf.printf "totals: %d states, %d transitions across %d configs\n%!"
    (Obs.counter "sim.mc.states")
    (Obs.counter "sim.mc.transitions")
    (List.length Mc.standard_suite);
  Json.Obj
    [
      ("configs", Json.List rows);
      ("mutations", Json.List mutation_rows);
      ("all_pinned", Json.Bool (not !drift));
      ("states_counter", Json.Int (Obs.counter "sim.mc.states"));
      ("transitions_counter", Json.Int (Obs.counter "sim.mc.transitions"));
      ("runs_counter", Json.Int (Obs.counter "sim.mc.runs"));
    ]

(* ------------------------------------------------------------------ *)
(* Always-on layout service: drive a running serve daemon with a phased,
   multi-client feed of the kernel corpus's PMU samples, then gate on the
   three identities the service rests on: (1) the retire-by-subtraction
   sliding window equals a from-scratch re-bin of the final window's
   samples, (2) at least one drift-triggered re-search published a new
   versioned layout, (3) a snapshot/restore round trip is byte-identical
   and a forced re-search on the restored server reproduces the
   suggestion exactly. Any divergence exits non-zero — the runtest-serve
   wiring doubles as the service-soundness check. *)

let run_serve () =
  section "serve: always-on layout service (sliding window + re-search)";
  let module Serve = Slo_serve.Serve in
  let module Window = Slo_serve.Window in
  let module Optimizer = Slo_search.Optimizer in
  let module Persist = Slo_persist.Persist in
  let program = Kernel.program () in
  let counts = Collect.profile () in
  let base = Collect.samples () in
  let params = Collect.calibrated_params in
  let interval = params.Pipeline.cc_interval in
  let lo =
    List.fold_left (fun a (s : Sample.t) -> min a s.Sample.itc) max_int base
  in
  let hi =
    List.fold_left (fun a (s : Sample.t) -> max a s.Sample.itc) min_int base
  in
  let span = (((hi - lo) / interval) + 2) * interval in
  (* window = two phases of the feed, like the CLI default: every phase
     slides it, so intervals retire throughout the run *)
  let window = max 1 (2 * span / interval) in
  let clients = 4 and phases = if !quick then 4 else 8 in
  (* above the window's ~11% phase-boundary oscillation, below the ~86%
     workload shift: re-search fires on the shift and only the shift *)
  let drift_threshold = 0.2 in
  let cfg =
    { Serve.interval; window; decay = 0.9; drift_threshold; min_samples = 64;
      queue_capacity = 8; params; program; counts; struct_name = "A";
      selector = Optimizer.Portfolio; seed = 11;
      restarts = (if !quick then 2 else 4) }
  in
  (* Phased feed: each phase shifts the whole base stream forward by a
     whole number of intervals; halfway through, lines rotate to a
     different sharing pattern so the weighted CC drifts. Per-phase batch
     construction fans out over the pool — the "many concurrent clients". *)
  let lines =
    List.sort_uniq compare (List.map (fun (s : Sample.t) -> s.Sample.line) base)
  in
  let line_arr = Array.of_list lines in
  let nl = Array.length line_arr in
  let line_pos = Hashtbl.create nl in
  Array.iteri (fun i l -> Hashtbl.replace line_pos l i) line_arr;
  let base_arr = Array.of_list base in
  let batch_of ~phase ~client =
    let rot = if 2 * phase >= phases then nl / 2 else 0 in
    Array.map
      (fun (s : Sample.t) ->
        let line =
          if rot = 0 then s.Sample.line
          else line_arr.((Hashtbl.find line_pos s.Sample.line + rot) mod nl)
        in
        { s with Sample.itc = s.Sample.itc + (phase * span) + client; line })
      base_arr
  in
  let client_list = List.init clients (fun c -> c) in
  Printf.printf
    "%d clients x %d phases, %d samples/batch, interval %d, window %d\n%!"
    clients phases (Array.length base_arr) interval window;
  let t = Serve.create cfg in
  let submitted = ref [] (* every batch, reverse submission order *) in
  Serve.run t;
  let t0 = Obs.now () in
  for phase = 0 to phases - 1 do
    let batches =
      match pool () with
      | Some p -> Pool.map p (fun c -> batch_of ~phase ~client:c) client_list
      | None -> List.map (fun c -> batch_of ~phase ~client:c) client_list
    in
    List.iter
      (fun b ->
        submitted := b :: !submitted;
        ignore (Serve.submit_wait t b))
      batches
  done;
  Serve.stop t;
  let ingest_wall = Obs.now () -. t0 in
  let n_batches = phases * clients in
  let n_samples = n_batches * Array.length base_arr in
  let rate =
    if ingest_wall > 0.0 then float_of_int n_samples /. ingest_wall else 0.0
  in
  let w = Serve.window t in
  Printf.printf
    "ingested %d samples in %.3fs (%.0f samples/s sustained, re-searches \
     included)\n"
    n_samples ingest_wall rate;
  Printf.printf
    "window: %d live samples in %d intervals; %d retired by subtraction, %d \
     late, %d batches dropped\n%!"
    (Window.live_samples w) (Window.live_intervals w) (Window.retired w)
    (Window.late w) (Serve.dropped_batches t);
  let canon b =
    List.map
      (fun (idx, tbl) ->
        (idx, Sample.total_samples tbl, Sample.line_freqs tbl))
      (Sample.binned_idx b)
  in
  (* Gate 1: the subtraction-maintained window = re-binning from scratch.
     A sample survives in the master iff its interval is inside the final
     window, so the direct bin of exactly those samples must match. *)
  let newest = match Window.newest w with Some n -> n | None -> 0 in
  let direct = Sample.binner ~interval in
  List.iter
    (Array.iter (fun (s : Sample.t) ->
         if Sample.floor_div s.Sample.itc interval > newest - window then
           Sample.feed direct s))
    (List.rev !submitted);
  let rebin_identical = canon (Window.master w) = canon direct in
  Printf.printf "retire-by-subtraction vs re-bin from scratch: %s\n%!"
    (if rebin_identical then "identical" else "MISMATCH");
  if not rebin_identical then begin
    Printf.eprintf
      "serve: window after retirement diverges from a from-scratch re-bin\n";
    exit 1
  end;
  (* Gate 2: the workload shift must have triggered a drift re-search. *)
  let pubs = Serve.publications t in
  Printf.printf "\n%-8s %10s %10s %12s %10s\n" "version" "drift" "samples"
    "score" "intervals";
  List.iter
    (fun (p : Serve.publication) ->
      Printf.printf "%-8d %10.4f %10d %12.2f %10d\n" p.Serve.version
        p.Serve.pub_drift p.Serve.window_samples
        p.Serve.best.Optimizer.score p.Serve.window_intervals)
    pubs;
  let drift_triggered =
    List.exists
      (fun (p : Serve.publication) ->
        p.Serve.version > 1 && p.Serve.pub_drift > drift_threshold)
      pubs
  in
  if not drift_triggered then begin
    Printf.eprintf
      "serve: the workload shift never triggered a drift re-search\n";
    exit 1
  end;
  (* Gate 3: kill-then-restore. Snapshot, restore into a fresh server,
     snapshot again: bytes must match (canonical row order), and a forced
     re-search on both must produce the same CC and the same layout. *)
  let snap1 = Filename.temp_file "slo_serve" ".snap" in
  let snap2 = Filename.temp_file "slo_serve" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ snap1; snap2 ])
  @@ fun () ->
  Serve.snapshot t ~path:snap1;
  let t' = Serve.restore cfg ~path:snap1 in
  Serve.snapshot t' ~path:snap2;
  let read_raw p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let snapshot_identical = read_raw snap1 = read_raw snap2 in
  let a = Serve.research t and b = Serve.research t' in
  let research_identical =
    a.Serve.cc_pairs = b.Serve.cc_pairs
    && a.Serve.best.Optimizer.blocks = b.Serve.best.Optimizer.blocks
    && a.Serve.best.Optimizer.score = b.Serve.best.Optimizer.score
  in
  Printf.printf
    "\nsnapshot round trip: %s; restored re-search: %s (version %d, score \
     %.2f)\n%!"
    (if snapshot_identical then "byte-identical" else "MISMATCH")
    (if research_identical then "identical suggestion" else "MISMATCH")
    (Serve.version t') b.Serve.best.Optimizer.score;
  if not (snapshot_identical && research_identical) then begin
    Printf.eprintf "serve: snapshot/restore failed to reproduce the state\n";
    exit 1
  end;
  let hist name =
    match Obs.histogram name with
    | Some s -> (s.Obs.count, s.Obs.p50, s.Obs.p99)
    | None -> (0, 0.0, 0.0)
  in
  let i_count, i_p50, i_p99 = hist "serve.ingest_s" in
  let r_count, _, r_p99 = hist "serve.research_s" in
  Printf.printf
    "ingest: %d batches, p50 %.6fs, p99 %.6fs; %d re-searches (p99 %.4fs)\n%!"
    i_count i_p50 i_p99 r_count r_p99;
  Json.Obj
    [
      ("interval", Json.Int interval);
      ("window", Json.Int window);
      ("clients", Json.Int clients);
      ("phases", Json.Int phases);
      ("batches", Json.Int n_batches);
      ("samples", Json.Int n_samples);
      ("samples_per_s", Json.Float rate);
      ("ingest_p50_s", Json.Float i_p50);
      ("ingest_p99_s", Json.Float i_p99);
      ("research_count", Json.Int r_count);
      ("research_p99_s", Json.Float r_p99);
      ("publications", Json.Int (List.length pubs));
      ( "versions",
        Json.List
          (List.map
             (fun (p : Serve.publication) -> Json.Int p.Serve.version)
             pubs) );
      ("live_samples", Json.Int (Window.live_samples w));
      ("live_intervals", Json.Int (Window.live_intervals w));
      ("retired_intervals", Json.Int (Window.retired w));
      ("late_samples", Json.Int (Window.late w));
      ("dropped_batches", Json.Int (Serve.dropped_batches t));
      ("rebin_identical", Json.Bool rebin_identical);
      ("drift_triggered", Json.Bool drift_triggered);
      ("snapshot_identical", Json.Bool snapshot_identical);
      ("research_identical", Json.Bool research_identical);
    ]

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("topology", run_topology);
    ("fig8", run_fig8);
    ("fig10", run_fig10);
    ("fig9", run_fig9);
    ("ccstability", run_cc_stability);
    ("gvl", run_gvl);
    ("accumulation", run_accumulation);
    ("oracle", run_oracle);
    ("userapp", run_userapp);
    ("ablation-k2", run_ablation_k2);
    ("ablation-sampling", run_ablation_sampling);
    ("ablation-clustering", run_ablation_clustering);
    ("ablation-machines", run_ablation_machines);
    ("ablation-protocol", run_ablation_protocol);
    ("micro", run_micro);
    ("layout_search", run_layout_search);
    ("code_layout", run_code_layout);
    ("cc_scale", run_cc_scale);
    ("sim_scale", run_sim_scale);
    ("model_check", run_model_check);
    ("serve", run_serve);
    ("smoke", run_smoke);
  ]

let run_section (name, f) =
  let t0 = Obs.now () in
  let data = f () in
  write_artifact ~section:name ~wall:(Obs.now () -. t0) data

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --jobs N, --jobs=N, or SLO_JOBS=N in the environment; --json PATH *)
  let rec parse_opts acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := j;
        parse_opts acc rest
      | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
        exit 1)
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" -> (
      let n = String.sub a 7 (String.length a - 7) in
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := j;
        parse_opts acc rest
      | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
        exit 1)
    | "--json" :: p :: rest ->
      json_path := Some p;
      parse_opts acc rest
    | [ "--json" ] ->
      Printf.eprintf "--json expects a path\n";
      exit 1
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--json=" ->
      json_path := Some (String.sub a 7 (String.length a - 7));
      parse_opts acc rest
    | a :: rest -> parse_opts (a :: acc) rest
  in
  let args = parse_opts [] args in
  let args =
    List.filter
      (fun a ->
        if a = "quick" || a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  Printf.printf
    "Structure Layout Optimization for Multithreaded Programs (CGO 2007)\n";
  Printf.printf "benchmark harness%s, %d job%s\n%!"
    (if !quick then " (quick mode)" else "")
    (effective_jobs ())
    (if effective_jobs () = 1 then "" else "s");
  (match args with
  | [] -> List.iter run_section all_sections
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all_sections with
        | Some f -> run_section (name, f)
        | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst all_sections));
          exit 1)
      names);
  write_manifest ()
