(* Artifact schema check: `check_json FILE KEY...` parses FILE with the
   in-tree JSON parser and requires every KEY to resolve as an object
   member. A KEY may be a dotted path ("metrics.counters"): each segment
   descends one object level. Run by the @runtest-obs alias against the
   bench artifacts and the manifest, so `dune runtest` fails if the bench
   JSON output regresses. *)

module Json = Slo_obs.Json

let lookup_path j path =
  List.fold_left
    (fun j seg -> match j with None -> None | Some j -> Json.member j seg)
    (Some j)
    (String.split_on_char '.' path)

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: check_json FILE [KEY ...]";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "check_json: %s\n" msg;
      exit 1
  in
  match Json.of_string contents with
  | Error msg ->
    Printf.eprintf "check_json: %s: invalid JSON: %s\n" path msg;
    exit 1
  | Ok j ->
    let missing = ref [] in
    for i = Array.length Sys.argv - 1 downto 2 do
      let key = Sys.argv.(i) in
      if lookup_path j key = None then missing := key :: !missing
    done;
    if !missing <> [] then begin
      Printf.eprintf "check_json: %s: missing keys: %s\n" path
        (String.concat ", " !missing);
      exit 1
    end;
    Printf.printf "check_json: %s: ok (%d keys)\n" path
      (Array.length Sys.argv - 2)
