(* Artifact schema check: `check_json FILE KEY[=TYPE]...` parses FILE with
   the in-tree JSON parser and requires every KEY to resolve as an object
   member. A KEY may be a dotted path ("metrics.counters"): each segment
   descends one object level. A KEY may also carry a type constraint:

     git_rev=nonempty-string   member exists, is a string, and is not ""
     wall_s=number             member is an Int or Float
     quick=bool                member is a Bool
     jobs=int                  member is an Int
     rows=list                 member is a List

   Run by the @runtest-obs / @runtest-col aliases against the bench
   artifacts and the manifest, so `dune runtest` fails if the bench JSON
   output regresses — including fields that exist but degrade to the wrong
   shape (e.g. a git_rev that is empty or not a string). *)

module Json = Slo_obs.Json

let lookup_path j path =
  List.fold_left
    (fun j seg -> match j with None -> None | Some j -> Json.member j seg)
    (Some j)
    (String.split_on_char '.' path)

let type_ok ty (j : Json.t) =
  match (ty, j) with
  | "string", Json.Str _ -> true
  | "nonempty-string", Json.Str s -> s <> ""
  | "number", (Json.Int _ | Json.Float _) -> true
  | "int", Json.Int _ -> true
  | "bool", Json.Bool _ -> true
  | "list", Json.List _ -> true
  | "object", Json.Obj _ -> true
  | _ -> false

let known_type = function
  | "string" | "nonempty-string" | "number" | "int" | "bool" | "list"
  | "object" ->
    true
  | _ -> false

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: check_json FILE [KEY[=TYPE] ...]";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "check_json: %s\n" msg;
      exit 1
  in
  match Json.of_string contents with
  | Error msg ->
    Printf.eprintf "check_json: %s: invalid JSON: %s\n" path msg;
    exit 1
  | Ok j ->
    let bad = ref [] in
    for i = Array.length Sys.argv - 1 downto 2 do
      let arg = Sys.argv.(i) in
      let key, ty =
        match String.index_opt arg '=' with
        | Some eq ->
          ( String.sub arg 0 eq,
            Some (String.sub arg (eq + 1) (String.length arg - eq - 1)) )
        | None -> (arg, None)
      in
      (match ty with
      | Some t when not (known_type t) ->
        Printf.eprintf "check_json: unknown type constraint %S in %S\n" t arg;
        exit 2
      | _ -> ());
      match (lookup_path j key, ty) with
      | None, _ -> bad := (arg, "missing") :: !bad
      | Some _, None -> ()
      | Some v, Some t ->
        if not (type_ok t v) then bad := (arg, "wrong type/value") :: !bad
    done;
    if !bad <> [] then begin
      Printf.eprintf "check_json: %s: failed keys: %s\n" path
        (String.concat ", "
           (List.map (fun (k, why) -> Printf.sprintf "%s (%s)" k why) !bad));
      exit 1
    end;
    Printf.printf "check_json: %s: ok (%d keys)\n" path
      (Array.length Sys.argv - 2)
