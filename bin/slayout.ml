(* slayout: the semi-automatic structure layout tool (paper Figure 3).

   Subcommands:
     parse     parse + typecheck a minic file, print the program or CFGs
     affinity  profile a file and print a struct's affinity graph
     fmf       print the field mapping file (line -> fields accessed)
     convert   convert a samples file between the text and binary columnar
               formats (either direction, detected from the magic)
     suggest   full pipeline: profile, simulate, build the FLG, print the
               layout report and the suggested layouts
     dot       emit the FLG in Graphviz format
     sdet      run the built-in SDET-like kernel benchmark

   For arbitrary input files the tool needs a concurrency harness: `suggest`
   runs every procedure on every CPU against shared instances (one per
   struct), which exposes the file's sharing behaviour without needing a
   workload description. Point it at a real workload by writing the driver
   against the library API instead (see examples/). *)

module Ast = Slo_ir.Ast
module Parser = Slo_ir.Parser
module Typecheck = Slo_ir.Typecheck
module Cfg = Slo_ir.Cfg
module Pretty = Slo_ir.Pretty
module Interp = Slo_profile.Interp
module Counts = Slo_profile.Counts
module Machine = Slo_sim.Machine
module Topology = Slo_sim.Topology
module Coherence = Slo_sim.Coherence
module Sample = Slo_concurrency.Sample
module Fmf = Slo_concurrency.Fmf
module Affinity_graph = Slo_affinity.Affinity_graph
module Group = Slo_affinity.Group
module Layout = Slo_layout.Layout
module Pipeline = Slo_core.Pipeline
module Report = Slo_core.Report
module Flg = Slo_core.Flg
module Sgraph = Slo_graph.Sgraph
module Prng = Slo_util.Prng
module Pool = Slo_exec.Pool
module Optimizer = Slo_search.Optimizer
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared plumbing *)

let load_program ?(inline = false) file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let p = Typecheck.check (Parser.parse_program ~file src) in
  if inline then Slo_ir.Inline.program p else p

let or_die f =
  try f () with
  | Parser.Error (msg, loc) | Interp.Runtime_error (msg, loc) ->
    Printf.eprintf "%s: %s\n" (Slo_ir.Loc.to_string loc) msg;
    exit 1
  | Slo_ir.Lexer.Error (msg, loc) ->
    Printf.eprintf "%s: %s\n" (Slo_ir.Loc.to_string loc) msg;
    exit 1
  | Typecheck.Error e ->
    Format.eprintf "%a@." Typecheck.pp_error e;
    exit 1
  | Slo_persist.Persist.Parse_error (msg, ln) ->
    Printf.eprintf "line %d: %s\n" ln msg;
    exit 1
  | Slo_persist.Persist.Bin_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

(* Run every procedure [rounds] times through the interpreter, binding
   struct-pointer parameters to scratch instances and integer parameters to
   [int_arg]. *)
let generic_profile program ~int_arg ~rounds =
  let counts = Counts.create () in
  let ctx = Interp.make_ctx program in
  let prng = Prng.create ~seed:11 in
  let scratch = Hashtbl.create 8 in
  let instance_of name =
    match Hashtbl.find_opt scratch name with
    | Some i -> i
    | None ->
      let i = Interp.make_instance program ~struct_name:name in
      Hashtbl.replace scratch name i;
      i
  in
  List.iter
    (fun (pd : Ast.proc_decl) ->
      for round = 0 to rounds - 1 do
        let args =
          List.map
            (fun p ->
              match p with
              | Ast.Pstruct { struct_name; _ } ->
                Interp.Ainst (instance_of struct_name)
              | Ast.Pint _ -> Interp.Aint (int_arg + round))
            pd.Ast.pd_params
        in
        Interp.run ctx ~counts ~prng ~proc:pd.Ast.pd_name args
      done)
    program.Ast.procs;
  counts

(* Generic concurrency harness: every CPU cycles through all procedures
   against machine-wide shared instances. [topology] defaults to the
   scaled Superdome; [hierarchy] optionally threads a multi-level cache
   geometry (per-CPU L1 + per-cell LLC) through to the kernel so the
   per-level counters accumulate; [on_result] observes the raw machine
   result (stats + per-CPU samples) before the samples are mapped to the
   pipeline's representation. *)
let generic_samples ?topology ?hierarchy ?on_result program ~cpus ~period ~reps
    ~int_arg =
  let topology =
    match topology with Some t -> t | None -> Topology.superdome ~cpus ()
  in
  let machine =
    Machine.create
      { (Machine.default_config topology) with
        Machine.sample_period = Some period; seed = 3; hierarchy }
      program
  in
  let shared = Hashtbl.create 8 in
  List.iter
    (fun (sd : Ast.struct_decl) ->
      Hashtbl.replace shared sd.Ast.sd_name
        (Machine.alloc machine ~struct_name:sd.Ast.sd_name))
    program.Ast.structs;
  let procs = Array.of_list program.Ast.procs in
  if Array.length procs = 0 then []
  else begin
    for cpu = 0 to cpus - 1 do
      let work = ref [] in
      for r = 0 to reps - 1 do
        let pd = procs.((cpu + r) mod Array.length procs) in
        let args =
          List.map
            (fun p ->
              match p with
              | Ast.Pstruct { struct_name; _ } ->
                Machine.Ainst (Hashtbl.find shared struct_name)
              | Ast.Pint _ -> Machine.Aint (int_arg + (cpu mod 8)))
            pd.Ast.pd_params
        in
        work := (pd.Ast.pd_name, args) :: !work
      done;
      Machine.add_thread machine ~cpu ~work:!work
    done;
    let result = Machine.run machine in
    (match on_result with Some f -> f result | None -> ());
    List.map
      (fun (s : Machine.sample) ->
        { Sample.cpu = s.Machine.s_cpu; itc = s.Machine.s_itc;
          line = s.Machine.s_line })
      result.Machine.samples
  end

(* ------------------------------------------------------------------ *)
(* Arguments *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"minic source file")

let struct_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "struct" ] ~docv:"NAME" ~doc:"target struct")

let int_arg_t =
  Arg.(
    value & opt int 16
    & info [ "int-arg" ] ~docv:"N"
        ~doc:"value for integer parameters when driving procedures")

let rounds_arg =
  Arg.(
    value & opt int 8
    & info [ "rounds" ] ~docv:"N" ~doc:"profiling rounds per procedure")

let cpus_collect_arg =
  Arg.(
    value & opt int 16
    & info [ "cpus" ] ~docv:"N" ~doc:"CPUs of the simulated collection machine")

let period_arg =
  Arg.(
    value & opt int 400
    & info [ "period" ] ~docv:"CYCLES" ~doc:"PMU sampling period")

let k1_arg = Arg.(value & opt float 1.0 & info [ "k1" ] ~doc:"CycleGain scale")
let k2_arg = Arg.(value & opt float 2.0 & info [ "k2" ] ~doc:"CycleLoss scale")

let interval_arg =
  Arg.(
    value & opt int 4000
    & info [ "interval" ] ~docv:"CYCLES" ~doc:"CodeConcurrency interval")

let line_size_arg =
  Arg.(
    value & opt int 128
    & info [ "line-size" ] ~docv:"BYTES"
        ~doc:"cache line (coherence block) size")

let inline_arg =
  Arg.(
    value & flag
    & info [ "inline" ]
        ~doc:
          "inline all calls before the analysis (recovers cross-procedure \
           affinity, paper §3.1)")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains for the parallel stages (default: $(b,SLO_JOBS) \
           if set, else the recommended domain count). Results are \
           identical for every N.")

(* An unknown --optimizer is a command-line error like an unknown
   subcommand: Cmdliner prints the valid choices and exits with its
   cli-error status (124), consistently across commands. *)
let selector_conv =
  let parse s =
    match Optimizer.selector_of_string s with
    | sel -> Ok sel
    | exception Invalid_argument _ ->
      Error
        (`Msg
           (Printf.sprintf "unknown optimizer %S (valid: %s)" s
              (String.concat ", " Optimizer.selector_names)))
  in
  let print ppf sel = Format.pp_print_string ppf (Optimizer.selector_name sel) in
  Arg.conv ~docv:"NAME" (parse, print)

(* An unknown --topology is a command-line error the same way: Cmdliner
   prints the valid machine shapes and exits with its cli-error status
   (124). The conv carries the builder, not the built topology, because
   the machine size comes from a separate --cpus argument. *)
let topology_names = [ "superdome"; "bus" ]

let topology_conv =
  let parse s =
    match s with
    | "superdome" -> Ok (s, fun cpus -> Topology.superdome ~cpus ())
    | "bus" -> Ok (s, fun cpus -> Topology.bus ~cpus ())
    | _ ->
      Error
        (`Msg
           (Printf.sprintf "unknown topology %S (valid: %s)" s
              (String.concat ", " topology_names)))
  in
  let print ppf (name, _) = Format.pp_print_string ppf name in
  Arg.conv ~docv:"NAME" (parse, print)

(* The multi-level geometry the collection machine simulates when a
   --topology is requested: a small private L1 in front of the coherent
   L2 plus a per-cell victim LLC, so the per-level hit counters (and the
   asymmetric local/remote LLC latencies) flow into the samples and the
   printed stats. *)
let collect_hierarchy =
  { Coherence.h_l1_lines = 64; h_l1_ways = Some 8;
    h_llc_lines = 1024; h_llc_ways = None }

(* domains = 1 keeps the serial code path (no pool at all) so the two
   paths stay observably interchangeable from the CLI *)
let with_jobs jobs f =
  let domains =
    match jobs with Some n when n >= 1 -> n | _ -> Pool.default_jobs ()
  in
  if domains <= 1 then f ~domains None
  else Pool.with_pool ~domains (fun p -> f ~domains (Some p))

(* ------------------------------------------------------------------ *)
(* Commands *)

let parse_cmd =
  let run file show_cfg =
    or_die (fun () ->
        let program = load_program file in
        if show_cfg then
          List.iter
            (fun (_, cfg) -> Format.printf "%a@.@." Cfg.pp cfg)
            (Cfg.of_program program)
        else Format.printf "%a@." Pretty.pp_program program)
  in
  let cfg_flag = Arg.(value & flag & info [ "cfg" ] ~doc:"print lowered CFGs") in
  Cmd.v
    (Cmd.info "parse" ~doc:"parse and typecheck a minic file")
    Term.(const run $ file_arg $ cfg_flag)

let affinity_cmd =
  let run file struct_name int_arg rounds inline =
    or_die (fun () ->
        let program = load_program ~inline file in
        let counts = generic_profile program ~int_arg ~rounds in
        let groups = Group.of_program program counts ~struct_name in
        List.iter (fun g -> Format.printf "%a@.@." Group.pp g) groups;
        let ag = Affinity_graph.build program counts ~struct_name in
        Format.printf "%a@." Affinity_graph.pp ag)
  in
  Cmd.v
    (Cmd.info "affinity" ~doc:"print a struct's affinity groups and graph")
    Term.(const run $ file_arg $ struct_arg $ int_arg_t $ rounds_arg $ inline_arg)

let fmf_cmd =
  let run file =
    or_die (fun () ->
        let program = load_program file in
        Format.printf "%a@." Fmf.pp (Fmf.of_program program))
  in
  Cmd.v
    (Cmd.info "fmf" ~doc:"print the field mapping file (line -> fields)")
    Term.(const run $ file_arg)

let analyze ?inline ?profile_file ?samples_file ?samples_bin_file ?pool
    ?topology ?hierarchy ?on_result file struct_name int_arg rounds cpus period
    k1 k2 interval line_size =
  let program = load_program ?inline file in
  let counts =
    match profile_file with
    | Some path -> Slo_persist.Persist.load_counts ~path
    | None -> generic_profile program ~int_arg ~rounds
  in
  let params =
    { Pipeline.default_params with
      Pipeline.k1; k2; cc_interval = interval; line_size }
  in
  let samples, cm =
    match (samples_bin_file, samples_file) with
    | Some path, _ ->
      (* Columnar ingestion: the binary store maps in with O(1) syscalls
         and pool workers bin index ranges of the shared columns. *)
      ( [],
        Some
          (Pipeline.concurrency_map_store ?pool ~params
             (Slo_persist.Persist.load_samples_bin ~path)) )
    | None, Some path ->
      (* Streaming ingestion: bin samples straight off the file and shard
         the per-interval CC computation across the pool — the sample list
         is never materialized. *)
      ( [],
        Some
          (Pipeline.concurrency_map ?pool ~params (fun f ->
               Slo_persist.Persist.iter_samples_file ~path f)) )
    | None, None ->
      ( generic_samples ?topology ?hierarchy ?on_result program ~cpus ~period
          ~reps:(rounds * 8) ~int_arg,
        None )
  in
  let flg =
    Pipeline.analyze ~params ?cm ~program ~counts ~samples ~struct_name ()
  in
  (program, params, flg)

let profile_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "profile" ] ~docv:"FILE" ~doc:"load profile counts from FILE (see $(b,collect))")

let samples_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "samples" ] ~docv:"FILE" ~doc:"load PMU samples from FILE (see $(b,collect))")

let samples_bin_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "samples-bin" ] ~docv:"FILE"
        ~doc:
          "load PMU samples from a binary columnar $(b,slo-samples-bin 1) \
           file (see $(b,convert)). The file is memory-mapped and binned \
           in parallel; the resulting analysis is identical to \
           $(b,--samples) on the equivalent text file. Takes precedence \
           over $(b,--samples).")

let suggest_cmd =
  let run file struct_name int_arg rounds cpus period k1 k2 interval line_size
      inline profile_file samples_file samples_bin_file jobs optimizer restarts
      seed topology stats =
    or_die (fun () ->
        let selector = optimizer in
        (* With --topology the collection machine switches to the requested
           shape and simulates the multi-level hierarchy, so the samples
           carry the machine's asymmetric miss costs; the raw result is
           kept for the hierarchy-aware search and --stats below. *)
        let topo = Option.map (fun (_, mk) -> mk cpus) topology in
        let hierarchy = Option.map (fun _ -> collect_hierarchy) topology in
        let machine_result = ref None in
        let program, params, flg, portfolio =
          (* the pool only lives inside this closure, so the search stage
             (which fans its candidates across it) runs here too *)
          with_jobs jobs (fun ~domains:_ pool ->
              let program, params, flg =
                analyze ~inline ?profile_file ?samples_file ?samples_bin_file
                  ?pool ?topology:topo ?hierarchy
                  ~on_result:(fun r -> machine_result := Some r)
                  file struct_name int_arg rounds cpus period k1 k2 interval
                  line_size
              in
              let portfolio =
                Option.map
                  (fun selector ->
                    Pipeline.search ~params ?pool ~seed ~restarts ~selector flg)
                  selector
              in
              (program, params, flg, portfolio))
        in
        (match topo with
         | Some t ->
           Printf.printf "collection machine: %s\n\n" (Topology.describe t)
         | None -> ());
        print_endline (Report.render (Pipeline.report ~params flg));
        Format.printf "@.%a@." Slo_core.Advisor.pp (Slo_core.Advisor.analyze flg);
        let declared =
          Layout.of_struct (Option.get (Ast.find_struct program struct_name))
        in
        Format.printf "@.--- declared layout ---@.%a@."
          (Layout.pp_lines ~line_size) declared;
        Format.printf
          "@.--- incremental layout (constraints on declared) ---@.%a@."
          (Layout.pp_lines ~line_size)
          (Pipeline.incremental_layout ~params flg ~baseline:declared);
        (match (selector, portfolio) with
         | Some selector, Some p ->
           Format.printf "@.--- layout search (%s, restarts=%d, seed=%d) ---@."
             (Optimizer.selector_name selector)
             restarts seed;
           Printf.printf "%-12s %12s %8s\n" "candidate" "score" "moves";
           List.iter
             (fun (r : Optimizer.result) ->
               Printf.printf "%-12s %12.2f %8d\n" r.Optimizer.label
                 r.Optimizer.score r.Optimizer.moves)
             p.Optimizer.scoreboard;
           Printf.printf "best: %s (%.2f vs greedy %.2f)\n"
             p.Optimizer.best.Optimizer.label p.Optimizer.best.Optimizer.score
             p.Optimizer.greedy.Optimizer.score;
           Format.printf "@.--- searched layout (%s) ---@.%a@."
             p.Optimizer.best.Optimizer.label
             (Layout.pp_lines ~line_size)
             p.Optimizer.best.Optimizer.layout
         | _ -> ());
        (* Machine-specific layout (paper §5): score cross-CPU conflicts
           by where the conflicting CPUs actually sit on the requested
           topology, and show the distance-blind layout next to it when
           the two disagree. *)
        (match (topo, !machine_result) with
         | Some t, Some r ->
           let module Hier = Slo_search.Hier in
           let module Field = Slo_layout.Field in
           let sd = Option.get (Ast.find_struct program struct_name) in
           let prof =
             Hier.profile ~fmf:(Fmf.of_program program) ~struct_name
               ~fields:(Field.of_struct sd)
               ~ncpus:(Topology.num_cpus t) r.Machine.samples
           in
           let hier_obj =
             Hier.objective ~k1 ~k2 ~topo:t ~struct_name ~line_size prof
           in
           let flat_obj =
             Hier.flat_objective ~k1 ~k2 ~struct_name ~line_size prof
           in
           let best obj =
             (Optimizer.run_selector ~seed ~restarts obj
                ~init:(Optimizer.decl_blocks obj)
                (Option.value selector ~default:Optimizer.Portfolio))
               .Optimizer.best
           in
           let bh = best hier_obj and bf = best flat_obj in
           Format.printf
             "@.--- hierarchy-aware layout (%s, score %.2f) ---@.%a@."
             (Topology.describe t) bh.Optimizer.score
             (Layout.pp_lines ~line_size)
             bh.Optimizer.layout;
           if
             Layout.fields bh.Optimizer.layout
             <> Layout.fields bf.Optimizer.layout
           then
             Format.printf
               "@.--- distance-blind layout (differs; hierarchy score %.2f) \
                ---@.%a@."
               (Slo_search.Objective.score hier_obj bf.Optimizer.layout)
               (Layout.pp_lines ~line_size)
               bf.Optimizer.layout
           else
             Format.printf
               "@.(the distance-blind objective picks the same layout)@."
         | _ -> ());
        if stats then
          match !machine_result with
          | Some r ->
            Format.printf "@.--- collection machine stats ---@.%a@."
              Slo_sim.Sim_stats.pp r.Machine.stats
          | None -> ())
  in
  let optimizer_arg =
    Arg.(
      value
      & opt (some selector_conv) None
      & info [ "optimizer" ] ~docv:"NAME"
          ~doc:
            "run the metaheuristic layout search after the analysis and \
             print its scoreboard plus the best layout found. $(docv) is \
             one of $(b,greedy) (score the clustering as-is), $(b,swap) \
             (steepest-descent pairwise swaps), $(b,anneal) (simulated \
             annealing restarts), or $(b,portfolio) (all of them, fanned \
             across the worker domains). Results are identical for every \
             $(b,--jobs) value.")
  in
  let restarts_arg =
    Arg.(
      value & opt int 4
      & info [ "restarts" ] ~docv:"N"
          ~doc:"annealing restarts for $(b,--optimizer) anneal|portfolio")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"master seed of the search PRNG streams")
  in
  let topology_arg =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topology" ] ~docv:"NAME"
          ~doc:
            "ask for a machine-specific layout: simulate the collection \
             machine as $(docv) — $(b,superdome) (cellular NUMA, \
             asymmetric cache-to-cache latencies) or $(b,bus) (flat SMP) — \
             with the multi-level cache hierarchy enabled, then run the \
             hierarchy-aware layout search that weighs each cross-CPU \
             conflict by the conflicting CPUs' transfer latency, printing \
             the distance-blind layout next to it when the two disagree. \
             The machine size still comes from $(b,--cpus).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "print the collection machine's simulator statistics after the \
             report, including the per-level miss breakdown (L1 / L2 / LLC \
             local / LLC remote hits) when $(b,--topology) enabled the \
             multi-level hierarchy")
  in
  Cmd.v
    (Cmd.info "suggest" ~doc:"run the full pipeline and print the layout report")
    Term.(
      const run $ file_arg $ struct_arg $ int_arg_t $ rounds_arg
      $ cpus_collect_arg $ period_arg $ k1_arg $ k2_arg $ interval_arg
      $ line_size_arg $ inline_arg $ profile_file_arg $ samples_file_arg
      $ samples_bin_file_arg $ jobs_arg $ optimizer_arg $ restarts_arg
      $ seed_arg $ topology_arg $ stats_arg)

let collect_cmd =
  let run file int_arg rounds cpus period out_prefix =
    or_die (fun () ->
        let program = load_program file in
        let counts = generic_profile program ~int_arg ~rounds in
        let samples =
          generic_samples program ~cpus ~period ~reps:(rounds * 8) ~int_arg
        in
        let prof_path = out_prefix ^ ".prof" in
        let samples_path = out_prefix ^ ".samples" in
        Slo_persist.Persist.save_counts ~path:prof_path counts;
        Slo_persist.Persist.save_samples ~path:samples_path samples;
        Printf.printf "wrote %s (%d records' worth of counts)\n" prof_path
          (List.length program.Ast.procs);
        Printf.printf "wrote %s (%d samples)\n" samples_path
          (List.length samples))
  in
  let out_arg =
    Arg.(
      value & opt string "slo-collect"
      & info [ "o"; "output" ] ~docv:"PREFIX"
          ~doc:"output prefix for the .prof and .samples files")
  in
  Cmd.v
    (Cmd.info "collect"
       ~doc:"run the collection phase and persist profile + samples files")
    Term.(
      const run $ file_arg $ int_arg_t $ rounds_arg $ cpus_collect_arg
      $ period_arg $ out_arg)

let convert_cmd =
  let module P = Slo_persist.Persist in
  let run src dst =
    or_die (fun () ->
        (* Sniff the source format off its magic: binary files begin with
           the 18-byte "slo-samples-bin 1\n" header, text files with the
           "slo-samples 1" line. *)
        let is_bin =
          let ic = open_in_bin src in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let want = String.length P.samples_bin_magic in
              in_channel_length ic >= want
              && really_input_string ic want = P.samples_bin_magic)
        in
        if is_bin then begin
          let n = P.convert_samples_to_text ~src ~dst in
          Printf.printf "wrote %s (slo-samples 1 text, %d samples)\n" dst n
        end
        else begin
          let n = P.convert_samples_to_bin ~src ~dst in
          Printf.printf "wrote %s (slo-samples-bin 1, %d samples)\n" dst n
        end)
  in
  let src_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SRC" ~doc:"source samples file (text or binary)")
  in
  let dst_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DST" ~doc:"destination path")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"convert a samples file between text and binary columnar formats"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Converts $(b,slo-samples 1) text files to the binary columnar \
              $(b,slo-samples-bin 1) format and back, detecting the source \
              format from its magic. The binary format stores the cpu/itc/line \
              columns as packed 32/64/32-bit arrays behind a 32-byte header, \
              so $(b,suggest --samples-bin) can memory-map it instead of \
              parsing ~10\\u{2078} text lines. The conversion is lossless: \
              text \\u{2192} binary \\u{2192} text reproduces the file byte \
              for byte (modulo comment/blank lines, which the text parser \
              skips).";
         ])
    Term.(const run $ src_arg $ dst_arg)

let dot_cmd =
  let run file struct_name int_arg rounds cpus period k1 k2 interval line_size =
    or_die (fun () ->
        let _, _, flg =
          analyze file struct_name int_arg rounds cpus period k1 k2 interval
            line_size
        in
        print_string (Sgraph.to_dot ~name:struct_name flg.Flg.graph))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"emit the FLG as Graphviz")
    Term.(
      const run $ file_arg $ struct_arg $ int_arg_t $ rounds_arg
      $ cpus_collect_arg $ period_arg $ k1_arg $ k2_arg $ interval_arg
      $ line_size_arg)

let simulate_cmd =
  let run file cpus period int_arg rounds =
    or_die (fun () ->
        let program = load_program file in
        let topology = Topology.superdome ~cpus () in
        let machine =
          Machine.create
            { (Machine.default_config topology) with
              Machine.sample_period = (if period = 0 then None else Some period);
              seed = 3 }
            program
        in
        let shared = Hashtbl.create 8 in
        List.iter
          (fun (sd : Ast.struct_decl) ->
            Hashtbl.replace shared sd.Ast.sd_name
              (Machine.alloc machine ~struct_name:sd.Ast.sd_name))
          program.Ast.structs;
        let procs = Array.of_list program.Ast.procs in
        if Array.length procs = 0 then failwith "no procedures to run";
        for cpu = 0 to cpus - 1 do
          let work = ref [] in
          for r = 0 to (rounds * 8) - 1 do
            let pd = procs.((cpu + r) mod Array.length procs) in
            let args =
              List.map
                (fun p ->
                  match p with
                  | Ast.Pstruct { struct_name; _ } ->
                    Machine.Ainst (Hashtbl.find shared struct_name)
                  | Ast.Pint _ -> Machine.Aint (int_arg + (cpu mod 8)))
                pd.Ast.pd_params
            in
            work := (pd.Ast.pd_name, args) :: !work
          done;
          Machine.add_thread machine ~cpu ~work:!work
        done;
        let r = Machine.run machine in
        Printf.printf "machine: %s\n" (Topology.describe topology);
        Printf.printf "makespan: %d cycles, %d work items, throughput %.1f \
                       items/Mcycle\n\n" r.Machine.makespan r.Machine.invocations
          (Machine.throughput r);
        Format.printf "%a@." Slo_sim.Sim_stats.pp r.Machine.stats;
        if r.Machine.samples <> [] then begin
          (* top sampled source lines: the profile a Caliper user reads *)
          let hist = Hashtbl.create 64 in
          List.iter
            (fun (smp : Machine.sample) ->
              let k = smp.Machine.s_line in
              Hashtbl.replace hist k
                (1 + try Hashtbl.find hist k with Not_found -> 0))
            r.Machine.samples;
          let rows =
            Hashtbl.fold (fun l n acc -> (n, l) :: acc) hist []
            |> List.sort compare |> List.rev
          in
          Printf.printf "\nhottest source lines (%d samples total):\n"
            (List.length r.Machine.samples);
          List.iteri
            (fun i (n, l) ->
              if i < 10 then Printf.printf "  %s:%-5d %6d samples\n" file l n)
            rows
        end)
  in
  let cpus_arg =
    Arg.(value & opt int 8 & info [ "cpus" ] ~docv:"N" ~doc:"machine size")
  in
  let period_arg =
    Arg.(
      value & opt int 400
      & info [ "period" ] ~docv:"CYCLES" ~doc:"sampling period (0 disables)")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"run the generic concurrency harness and print machine statistics")
    Term.(const run $ file_arg $ cpus_arg $ period_arg $ int_arg_t $ rounds_arg)

let sdet_cmd =
  let run cpus bus runs jobs stats json_out =
    or_die (fun () ->
        let module Exp = Slo_workload.Experiments in
        let module Obs = Slo_obs.Obs in
        let module Json = Slo_obs.Json in
        let topology =
          if bus then Topology.bus ~cpus () else Topology.superdome ~cpus ()
        in
        with_jobs jobs (fun ~domains pool ->
            Printf.printf "machine: %s (%d job%s)\n%!"
              (Topology.describe topology) domains
              (if domains = 1 then "" else "s");
            let t0 = Obs.now () in
            let layouts = Exp.analyze_all ?pool () in
            let analysis_s = Obs.now () -. t0 in
            let rows = Exp.measure_machine ~runs ?pool topology layouts in
            Printf.printf "%-8s %12s %12s %12s\n" "struct" "automatic" "hotness"
              "incremental";
            List.iter
              (fun (m : Exp.measurement) ->
                Printf.printf "%-8s %+11.2f%% %+11.2f%% %+11.2f%%\n"
                  m.Exp.m_struct m.Exp.m_automatic m.Exp.m_hotness
                  m.Exp.m_incremental)
              rows;
            if stats then begin
              Printf.printf "\n--- stats ---\n";
              Printf.printf "%-28s %12.3f s\n" "analysis wall-clock" analysis_s;
              List.iter
                (fun (name, v) ->
                  if String.length name > 4 && String.sub name 0 4 = "sim." then
                    Printf.printf "%-28s %12d\n" name v)
                (Obs.counters ());
              match Obs.gauge "pool.utilization" with
              | Some u -> Printf.printf "%-28s %12.2f\n" "pool.utilization" u
              | None -> ()
            end;
            match json_out with
            | None -> ()
            | Some path ->
              let row_json (m : Exp.measurement) =
                Json.Obj
                  [
                    ("struct", Json.Str m.Exp.m_struct);
                    ("automatic_pct", Json.Float m.Exp.m_automatic);
                    ("hotness_pct", Json.Float m.Exp.m_hotness);
                    ("incremental_pct", Json.Float m.Exp.m_incremental);
                  ]
              in
              let j =
                Json.Obj
                  [
                    ("schema", Json.Str "slo-sdet/1");
                    ("cpus", Json.Int cpus);
                    ("bus", Json.Bool bus);
                    ("runs", Json.Int runs);
                    ("jobs", Json.Int domains);
                    ("analysis_s", Json.Float analysis_s);
                    ("rows", Json.List (List.map row_json rows));
                    ("metrics", Obs.to_json ());
                  ]
              in
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc (Json.pretty j));
              Printf.printf "wrote %s\n" path))
  in
  let bus_flag =
    Arg.(value & flag & info [ "bus" ] ~doc:"bus topology instead of Superdome")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "after the table, print the analysis wall-clock and the \
             simulator's cumulative counters (loads, misses, invalidations, \
             ...) from the observability registry")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "write the measurement rows plus a full metrics snapshot as \
             pretty-printed JSON to $(docv)")
  in
  let runs_arg =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~docv:"N" ~doc:"measured runs per configuration")
  in
  let cpus_arg =
    Arg.(value & opt int 32 & info [ "cpus" ] ~docv:"N" ~doc:"machine size")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "worker domains for parallel simulator runs (default: \
             $(b,SLO_JOBS) if set, else the recommended domain count). \
             Results are identical for every N.")
  in
  Cmd.v
    (Cmd.info "sdet" ~doc:"run the built-in SDET-like kernel benchmark")
    Term.(
      const run $ cpus_arg $ bus_flag $ runs_arg $ jobs_arg $ stats_flag
      $ json_arg)

let codelayout_cmd =
  let module Codelayout = Slo_codelayout.Codelayout in
  let module Ctrap = Slo_workload.Ctrap in
  let run file capacity optimizer restarts seed jobs cpus int_arg rounds =
    or_die (fun () ->
        let program, counts, builtin =
          match file with
          | Some f ->
            let p = load_program f in
            (p, generic_profile p ~int_arg ~rounds, false)
          | None -> (Ctrap.program (), Ctrap.profile (), true)
        in
        let prob = Codelayout.of_program ~capacity program counts in
        let pf =
          with_jobs jobs (fun ~domains:_ pool ->
              Codelayout.search ?pool ~seed ~restarts prob optimizer)
        in
        let blocks = Codelayout.blocks prob in
        let graph = Codelayout.graph prob in
        let active =
          List.length
            (List.filter
               (fun b -> Sgraph.degree graph (Codelayout.Block.name b) > 0)
               blocks)
        in
        Printf.printf
          "code layout: %d blocks (%d active), %d affinity edges, %dB bins\n\n"
          (List.length blocks) active (Sgraph.num_edges graph) capacity;
        Printf.printf "%-12s %12s %8s\n" "candidate" "score" "moves";
        List.iter
          (fun (r : Codelayout.result) ->
            Printf.printf "%-12s %12.2f %8d\n" r.Codelayout.label
              r.Codelayout.score r.Codelayout.moves)
          pf.Codelayout.scoreboard;
        let decl_score = Codelayout.score prob (Codelayout.decl_bins prob) in
        Printf.printf "best: %s (%.2f vs greedy %.2f, declaration %.2f)\n"
          pf.Codelayout.best.Codelayout.label pf.Codelayout.best.Codelayout.score
          pf.Codelayout.greedy.Codelayout.score decl_score;
        if builtin then begin
          (* The built-in trap ships its own simulator driver: confirm the
             objective gap as I-cache misses, decl order vs searched. *)
          let base = Ctrap.run_sim ~cpus () in
          let opt =
            Ctrap.run_sim ~cpus ~code_layout:pf.Codelayout.best.Codelayout.order
              ()
          in
          let module S = Slo_sim.Sim_stats in
          Printf.printf
            "\nsim (%d cpus, %d-line x %dB I-cache):\n" cpus
            Ctrap.icache.Slo_sim.Coherence.i_lines
            Ctrap.icache.Slo_sim.Coherence.i_line_size;
          let row label (r : Machine.result) =
            Printf.printf
              "  %-12s imisses %8d / %8d fetches (%5.1f%%), istall %9d, \
               makespan %9d\n"
              label r.Machine.stats.S.imisses r.Machine.stats.S.ifetches
              (100.0 *. S.imiss_rate r.Machine.stats)
              r.Machine.stats.S.istall_cycles r.Machine.makespan
          in
          row "declaration" base;
          row pf.Codelayout.best.Codelayout.label opt;
          if opt.Machine.stats.S.imisses < base.Machine.stats.S.imisses then
            print_endline "confirmed: searched layout fetches fewer lines"
          else begin
            print_endline "NOT confirmed: searched layout did not reduce misses";
            exit 1
          end
        end)
  in
  let file_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "minic source file to lay out (default: the built-in code-layout \
             trap workload, which also runs a simulator confirmation)")
  in
  let capacity_arg =
    Arg.(
      value & opt int Codelayout.default_capacity
      & info [ "capacity" ] ~docv:"BYTES" ~doc:"I-cache line size (bin capacity)")
  in
  let optimizer_arg =
    Arg.(
      value
      & opt selector_conv Slo_search.Optimizer.Portfolio
      & info [ "optimizer" ] ~docv:"NAME"
          ~doc:
            "search strategy: $(b,greedy), $(b,swap), $(b,anneal) or \
             $(b,portfolio) (default)")
  in
  let restarts_arg =
    Arg.(
      value & opt int 4
      & info [ "restarts" ] ~docv:"N"
          ~doc:"annealing restarts for anneal|portfolio")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"master seed of the search PRNG streams")
  in
  let cpus_arg =
    Arg.(
      value & opt int 4
      & info [ "cpus" ] ~docv:"N" ~doc:"machine size of the sim confirmation")
  in
  Cmd.v
    (Cmd.info "codelayout"
       ~doc:"search a basic-block code layout that packs hot paths onto few \
             I-cache lines"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the same metaheuristic portfolio as $(b,suggest) over a \
              second substrate: nodes are the program's basic blocks, \
              affinity is how often control passes between two blocks \
              (profile edge counts), and bins are I-cache lines. The best \
              partition is flattened into a block order for the simulator's \
              instruction-fetch side. Without $(i,FILE) the built-in trap \
              workload is used and the result is confirmed end to end: the \
              searched order must fetch strictly fewer I-cache lines than \
              declaration order, or the command exits non-zero.";
         ])
    Term.(
      const run $ file_opt_arg $ capacity_arg $ optimizer_arg $ restarts_arg
      $ seed_arg $ jobs_arg $ cpus_arg $ int_arg_t $ rounds_arg)

let verify_cmd =
  let module Mc = Slo_sim.Modelcheck in
  let run () =
    Printf.printf
      "exhaustive coherence verification: every interleaving of every \
       pinned small config,\nboth backends + trace oracle checked on every \
       transition\n";
    Printf.printf "%-24s %8s %8s %8s %6s %8s\n" "config" "states" "pinned"
      "edges" "depth" "oracle";
    let ok =
      List.fold_left
        (fun ok (cfg, pin) ->
          match Mc.run cfg with
          | r ->
            let pinned = r.Mc.r_states = pin in
            Printf.printf "%-24s %8d %8d %8d %6d %8d%s\n%!"
              (Mc.config_name cfg) r.Mc.r_states pin r.Mc.r_transitions
              r.Mc.r_max_depth r.Mc.r_oracle_traces
              (if pinned then "" else "  DRIFT");
            ok && pinned
          | exception Mc.Violation { vmsg; vtrace } ->
            Printf.printf "%-24s VIOLATION: %s\n" (Mc.config_name cfg) vmsg;
            List.iter
              (fun { Mc.v_cpu; v_line; v_off; v_write } ->
                Printf.printf "  %s cpu %d line %d off %d\n"
                  (if v_write then "write" else "read")
                  v_cpu v_line v_off)
              vtrace;
            false)
        true Mc.standard_suite
    in
    if ok then print_endline "verified: all invariants hold, all state counts pinned"
    else begin
      print_endline "VERIFICATION FAILED";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "model-check the coherence kernel exhaustively on small \
          configurations")
    Term.(const run $ const ())

let serve_cmd =
  let module Serve = Slo_serve.Serve in
  let module Obs = Slo_obs.Obs in
  let run file struct_name int_arg rounds cpus period k1 k2 interval line_size
      inline jobs window decay drift_threshold min_samples capacity clients
      phases seed restarts snapshot_path restore_path =
    or_die (fun () ->
        let program = load_program ~inline file in
        if Ast.find_struct program struct_name = None then begin
          Printf.eprintf "error: no struct named %s\n" struct_name;
          exit 1
        end;
        let counts = generic_profile program ~int_arg ~rounds in
        let base =
          generic_samples program ~cpus ~period ~reps:(rounds * 8) ~int_arg
        in
        if base = [] then begin
          Printf.eprintf
            "error: the generic harness produced no samples (try a smaller \
             --period)\n";
          exit 1
        end;
        let params =
          { Pipeline.default_params with
            Pipeline.k1; k2; line_size; cc_interval = interval }
        in
        let lo =
          List.fold_left (fun a (s : Sample.t) -> min a s.Sample.itc) max_int
            base
        in
        let hi =
          List.fold_left (fun a (s : Sample.t) -> max a s.Sample.itc) min_int
            base
        in
        let span = (((hi - lo) / interval) + 2) * interval in
        (* Default the window to two phases of the feed, so each phase
           slides it and consecutive clients land inside it; the
           computation is deterministic, so --restore with the same
           arguments reproduces the same window length. *)
        let window =
          match window with Some w -> w | None -> max 1 (2 * span / interval)
        in
        let cfg =
          { Serve.interval; window; decay; drift_threshold; min_samples;
            queue_capacity = capacity; params; program; counts; struct_name;
            selector = Optimizer.Portfolio; seed; restarts }
        in
        let t =
          match restore_path with
          | Some path ->
            let t = Serve.restore cfg ~path in
            Printf.printf "restored from %s: version %d, %d live samples\n"
              path (Serve.version t)
              (Slo_serve.Window.live_samples (Serve.window t));
            t
          | None -> Serve.create cfg
        in
        (* A restored window already has a watermark; shift the whole
           feed past it (by whole spans, keeping phase geometry) so the
           continuation run slides the window instead of feeding samples
           the watermark would drop as late. *)
        let itc_off =
          match Slo_serve.Window.newest (Serve.window t) with
          | Some n ->
            let need = ((n + 1) * interval) - lo in
            if need <= 0 then 0 else ((need + span - 1) / span) * span
          | None -> 0
        in
        (* Each phase shifts the whole base stream forward by a whole
           number of intervals, so the window keeps sliding; halfway
           through, lines are rotated to a different layout-relevant
           pattern, so the weighted CC drifts and a re-search fires. *)
        let lines =
          List.sort_uniq compare
            (List.map (fun (s : Sample.t) -> s.Sample.line) base)
        in
        let line_arr = Array.of_list lines in
        let nl = Array.length line_arr in
        let line_pos = Hashtbl.create nl in
        Array.iteri (fun i l -> Hashtbl.replace line_pos l i) line_arr;
        let base_arr = Array.of_list base in
        let batch_of ~phase ~client =
          let rot = if 2 * phase >= phases then nl / 2 else 0 in
          Array.map
            (fun (s : Sample.t) ->
              let line =
                if rot = 0 then s.Sample.line
                else
                  line_arr.((Hashtbl.find line_pos s.Sample.line + rot) mod nl)
              in
              { s with
                Sample.itc = s.Sample.itc + itc_off + (phase * span) + client;
                line })
            base_arr
        in
        let clients_l = List.init clients (fun c -> c) in
        Printf.printf
          "serve: %d clients x %d phases, %d samples/batch, interval %d, \
           window %d, decay %.3f, drift threshold %.3f\n%!"
          clients phases (Array.length base_arr) interval window decay
          drift_threshold;
        Serve.run t;
        with_jobs jobs (fun ~domains:_ pool ->
            for phase = 0 to phases - 1 do
              let batches =
                match pool with
                | Some p -> Pool.map p (fun c -> batch_of ~phase ~client:c) clients_l
                | None -> List.map (fun c -> batch_of ~phase ~client:c) clients_l
              in
              List.iter (fun b -> ignore (Serve.submit_wait t b)) batches
            done);
        Serve.stop t;
        Printf.printf "\n%-8s %10s %10s %12s %12s %10s\n" "version" "drift"
          "samples" "score" "greedy" "intervals";
        List.iter
          (fun (p : Serve.publication) ->
            Printf.printf "%-8d %10.4f %10d %12.2f %12.2f %10d\n"
              p.Serve.version p.Serve.pub_drift p.Serve.window_samples
              p.Serve.best.Optimizer.score p.Serve.greedy_score
              p.Serve.window_intervals)
          (Serve.publications t);
        let w = Serve.window t in
        Printf.printf
          "\nwindow: %d live samples in %d intervals; %d intervals retired \
           by subtraction, %d late samples dropped, %d batches dropped\n"
          (Slo_serve.Window.live_samples w)
          (Slo_serve.Window.live_intervals w)
          (Slo_serve.Window.retired w)
          (Slo_serve.Window.late w) (Serve.dropped_batches t);
        (match Obs.histogram "serve.ingest_s" with
        | Some s ->
          Printf.printf
            "ingest: %d batches, p50 %.6fs, p99 %.6fs; researches: %d\n"
            s.Obs.count s.Obs.p50 s.Obs.p99
            (Obs.counter "serve.researches")
        | None -> ());
        match snapshot_path with
        | Some path ->
          Serve.snapshot t ~path;
          Printf.printf "snapshot written to %s (version %d)\n" path
            (Serve.version t)
        | None -> ())
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N"
          ~doc:
            "sliding-window length in intervals (default: two phases of \
             the simulated feed)")
  in
  let decay_arg =
    Arg.(
      value & opt float 0.9
      & info [ "decay" ] ~docv:"D"
          ~doc:"per-interval-of-age CC decay, in (0, 1]; 1.0 disables decay")
  in
  let drift_arg =
    Arg.(
      value & opt float 0.05
      & info [ "drift-threshold" ] ~docv:"D"
          ~doc:
            "re-search when the weighted CC's normalized L1 drift since \
             the last publication exceeds $(docv)")
  in
  let min_samples_arg =
    Arg.(
      value & opt int 64
      & info [ "min-samples" ] ~docv:"N"
          ~doc:"live samples required before the first publication")
  in
  let capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"max queued batches before admission control drops")
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"concurrent simulated sample feeds")
  in
  let phases_arg =
    Arg.(
      value & opt int 6
      & info [ "phases" ] ~docv:"N"
          ~doc:
            "ingest phases; each slides the window forward, and the \
             workload shifts halfway through")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"master seed of the search PRNG streams")
  in
  let restarts_arg =
    Arg.(
      value & opt int 4
      & info [ "restarts" ] ~docv:"N" ~doc:"annealing restarts per re-search")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:"write the windowed state to $(docv) on exit (atomic)")
  in
  let restore_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "restore" ] ~docv:"PATH"
          ~doc:"start from the slo-serve-snapshot at $(docv)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run the always-on layout service against simulated client feeds")
    Term.(
      const run $ file_arg $ struct_arg $ int_arg_t $ rounds_arg
      $ cpus_collect_arg $ period_arg $ k1_arg $ k2_arg $ interval_arg
      $ line_size_arg $ inline_arg $ jobs_arg $ window_arg $ decay_arg
      $ drift_arg $ min_samples_arg $ capacity_arg $ clients_arg $ phases_arg
      $ seed_arg $ restarts_arg $ snapshot_arg $ restore_arg)

let () =
  let doc = "structure layout optimization for multithreaded programs" in
  let info = Cmd.info "slayout" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd; affinity_cmd; fmf_cmd; collect_cmd; convert_cmd;
            suggest_cmd; dot_cmd; simulate_cmd; sdet_cmd; serve_cmd;
            codelayout_cmd; verify_cmd;
          ]))
